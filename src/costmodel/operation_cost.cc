#include "costmodel/operation_cost.h"

namespace costperf::costmodel {

CostBreakdown MmCost(double ops_per_sec, const CostParams& p) {
  CostBreakdown b;
  // DRAM rental plus the durable flash copy.
  b.storage = p.page_size_bytes * (p.dram_cost_per_byte + p.flash_cost_per_byte);
  b.execution = ops_per_sec * (p.processor_cost / p.rops);
  return b;
}

CostBreakdown SsCost(double ops_per_sec, const CostParams& p) {
  CostBreakdown b;
  b.storage = p.page_size_bytes * p.flash_cost_per_byte;
  b.execution = ops_per_sec * (p.ssd_io_capability_cost / p.iops +
                               p.r * (p.processor_cost / p.rops));
  return b;
}

CostBreakdown CssCost(double ops_per_sec, const CostParams& p,
                      const CompressionParams& c) {
  CostBreakdown b;
  b.storage = p.page_size_bytes * c.compression_ratio * p.flash_cost_per_byte;
  b.execution =
      ops_per_sec * (p.ssd_io_capability_cost / p.iops +
                     (p.r + c.decompress_r) * (p.processor_cost / p.rops));
  return b;
}

std::string TierName(Tier t) {
  switch (t) {
    case Tier::kMainMemory:
      return "MM";
    case Tier::kSecondaryStorage:
      return "SS";
    case Tier::kCompressedSecondary:
      return "CSS";
  }
  return "?";
}

Tier CheapestTier(double ops_per_sec, const CostParams& p) {
  return MmCost(ops_per_sec, p).total() <= SsCost(ops_per_sec, p).total()
             ? Tier::kMainMemory
             : Tier::kSecondaryStorage;
}

Tier CheapestTier(double ops_per_sec, const CostParams& p,
                  const CompressionParams& c) {
  const double mm = MmCost(ops_per_sec, p).total();
  const double ss = SsCost(ops_per_sec, p).total();
  const double css = CssCost(ops_per_sec, p, c).total();
  if (mm <= ss && mm <= css) return Tier::kMainMemory;
  if (ss <= css) return Tier::kSecondaryStorage;
  return Tier::kCompressedSecondary;
}

}  // namespace costperf::costmodel
