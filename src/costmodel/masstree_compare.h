#ifndef COSTPERF_COSTMODEL_MASSTREE_COMPARE_H_
#define COSTPERF_COSTMODEL_MASSTREE_COMPARE_H_

#include "costmodel/cost_params.h"

namespace costperf::costmodel {

// Paper §5: cost comparison between the Bw-tree (data caching system,
// fully cached) and MassTree (main-memory system) — Equations (7), (8)
// and Figure 3.
//
// Because this is not a paging comparison, the footprint is the *whole
// database* S rather than a page, and both systems keep everything in
// DRAM. MassTree trades space for time:
//   P_x : MassTree throughput / Bw-tree throughput (> 1)
//   M_x : MassTree memory footprint / Bw-tree footprint (> 1)

// Inputs measured from the two systems.
struct SystemComparison {
  double px = 2.6;  // paper's measured execution gain
  double mx = 2.1;  // paper's measured memory expansion
  double database_bytes = 6.1e9;  // Bw-tree footprint in the experiment
};

// Cost per operation, at inter-access interval t_i over the whole DB, for
// the Bw-tree:  $DM = T_i * S * $M + $P/ROPS.
double BwTreeCostPerOp(double t_i_seconds, const SystemComparison& sys,
                       const CostParams& p);

// MassTree:     $MTM = T_i * M_x * S * $M + $P/(P_x*ROPS).
double MassTreeCostPerOp(double t_i_seconds, const SystemComparison& sys,
                         const CostParams& p);

// Equation (7): the breakeven inter-access interval
//   T_i = (1/S) * [($P/ROPS) * (1/$M)] * (P_x - 1)/(P_x * (M_x - 1)).
// Below this interval (hotter than breakeven) MassTree is cheaper; above
// it the Bw-tree's smaller footprint wins.
double CrossoverIntervalSeconds(const SystemComparison& sys,
                                const CostParams& p);

// The access rate (ops/sec over the DB) above which MassTree is cheaper.
double CrossoverOpsPerSec(const SystemComparison& sys, const CostParams& p);

// Equation (8)'s size-independent coefficient: T_i * S, in byte-seconds.
// With the paper's constants this is ≈ 8.3e3.
double CrossoverCoefficient(const SystemComparison& sys, const CostParams& p);

}  // namespace costperf::costmodel

#endif  // COSTPERF_COSTMODEL_MASSTREE_COMPARE_H_
