#include "costmodel/five_minute_rule.h"

#include <limits>

namespace costperf::costmodel {

double BreakevenIntervalSeconds(const CostParams& p) {
  return (1.0 / (p.dram_cost_per_byte * p.page_size_bytes)) *
         (p.ssd_io_capability_cost / p.iops +
          (p.r - 1.0) * p.processor_cost / p.rops);
}

double BreakevenOpsPerSec(const CostParams& p) {
  return 1.0 / BreakevenIntervalSeconds(p);
}

double RecordBreakevenIntervalSeconds(const CostParams& p,
                                      double record_size_bytes) {
  CostParams rp = p;
  rp.page_size_bytes = record_size_bytes;
  return BreakevenIntervalSeconds(rp);
}

double ClassicBreakevenIntervalSeconds(const CostParams& p) {
  return (1.0 / (p.dram_cost_per_byte * p.page_size_bytes)) *
         (p.ssd_io_capability_cost / p.iops);
}

double MmSsBreakevenOpsPerSec(const CostParams& p) {
  return BreakevenOpsPerSec(p);
}

double CssSsBreakevenOpsPerSec(const CostParams& p,
                               const CompressionParams& c) {
  // SS:  P_s*$Fl            + N * ($I/IOPS + R*$P/ROPS)
  // CSS: P_s*ratio*$Fl      + N * ($I/IOPS + (R+dr)*$P/ROPS)
  // CSS is cheaper when N < storage_saving / extra_exec_per_op.
  const double storage_saving =
      p.page_size_bytes * (1.0 - c.compression_ratio) * p.flash_cost_per_byte;
  const double extra_exec_per_op =
      c.decompress_r * p.processor_cost / p.rops;
  if (extra_exec_per_op <= 0) {
    return storage_saving > 0 ? std::numeric_limits<double>::infinity() : 0.0;
  }
  if (storage_saving <= 0) return 0.0;
  return storage_saving / extra_exec_per_op;
}

}  // namespace costperf::costmodel
