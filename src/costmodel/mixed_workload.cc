#include "costmodel/mixed_workload.h"

#include <cassert>

namespace costperf::costmodel {

double MixedExecTimePerOp(double p0, double f, double r) {
  assert(p0 > 0);
  return (1.0 - f) * (1.0 / p0) + f * r * (1.0 / p0);
}

double MixedThroughput(double p0, double f, double r) {
  return p0 / ((1.0 - f) + f * r);
}

double RelativeThroughput(double f, double r) {
  return 1.0 / ((1.0 - f) + f * r);
}

double DeriveR(double p0, double pf, double f) {
  assert(f > 0);
  return 1.0 + (1.0 / f) * (p0 / pf - 1.0);
}

double FitR(double p0, const std::vector<MixedObservation>& observations) {
  // In the 1/PF domain Eq. (1) reads: 1/PF = (1/P0) + (F/P0)*(R-1).
  // Least squares for (R-1) with predictor x = F/P0 and response
  // y = 1/PF - 1/P0:  R-1 = sum(x*y)/sum(x*x).
  double sxy = 0, sxx = 0;
  for (const auto& ob : observations) {
    if (ob.f <= 0 || ob.pf <= 0) continue;
    double x = ob.f / p0;
    double y = 1.0 / ob.pf - 1.0 / p0;
    sxy += x * y;
    sxx += x * x;
  }
  if (sxx == 0) return 1.0;
  return 1.0 + sxy / sxx;
}

std::vector<double> RelativeThroughputCurve(double r, int points) {
  std::vector<double> curve;
  curve.reserve(points);
  for (int i = 0; i < points; ++i) {
    double f = points == 1 ? 0.0
                           : static_cast<double>(i) /
                                 static_cast<double>(points - 1);
    curve.push_back(RelativeThroughput(f, r));
  }
  return curve;
}

}  // namespace costperf::costmodel
