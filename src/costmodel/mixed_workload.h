#ifndef COSTPERF_COSTMODEL_MIXED_WORKLOAD_H_
#define COSTPERF_COSTMODEL_MIXED_WORKLOAD_H_

#include <vector>

namespace costperf::costmodel {

// The paper's §2.2 model of a mixed workload of MM (in-cache) and SS
// (cache-miss) operations.
//
//   F  : fraction of operations that are SS (the cache miss ratio)
//   R  : CPU execution time of one SS op / one MM op
//   P0 : ops/sec when every operation is MM
//   PF : ops/sec at miss fraction F

// Equation (1): weighted per-op execution time, 1/PF, in seconds.
double MixedExecTimePerOp(double p0, double f, double r);

// Equation (2): PF = P0 / ((1-F) + F*R).
double MixedThroughput(double p0, double f, double r);

// Equation (2) normalized: PF/P0, independent of P0. This is the y-axis of
// Figure 1.
double RelativeThroughput(double f, double r);

// Equation (3): derive R from an observed (F, PF) point and the all-cached
// throughput P0. Requires f > 0.
double DeriveR(double p0, double pf, double f);

// One observed mixed-workload point.
struct MixedObservation {
  double f;   // SS fraction
  double pf;  // ops/sec at that fraction
};

// Fits a single R to a set of observations by minimizing squared error of
// Eq. (2) in the 1/PF domain (which is linear in R, so the fit is closed
// form). Observations with f == 0 contribute to p0 handling only and are
// ignored here; pass the measured p0 explicitly.
double FitR(double p0, const std::vector<MixedObservation>& observations);

// Samples the Figure-1 curve: relative throughput at `points` evenly
// spaced miss fractions in [0, 1].
std::vector<double> RelativeThroughputCurve(double r, int points);

}  // namespace costperf::costmodel

#endif  // COSTPERF_COSTMODEL_MIXED_WORKLOAD_H_
