#ifndef COSTPERF_MAINTENANCE_SCHEDULER_H_
#define COSTPERF_MAINTENANCE_SCHEDULER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <thread>
#include <vector>

#include "common/lock_order.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace costperf::maintenance {

// Per-step work bounds. A maintenance step is *incremental*: it does at
// most this much work, then returns so the worker can rotate to other
// registered stores. The numbers bound foreground interference (each
// unit can dirty the cache/log the foreground also touches), not
// correctness — a store signals again if pressure remains.
struct MaintenanceQuota {
  uint32_t evict_pages = 32;             // victims evicted per step
  uint32_t gc_segments = 1;              // log segments collected per step
  uint32_t consolidate_scan_pages = 128; // mapping slots scanned for long chains
  uint32_t flush_dirty_leaves = 8;       // dirty leaves flushed per step
  uint32_t compress_pages = 16;          // pages demoted to the CSS tier per step
  uint32_t promote_pages = 8;            // CSS pages promoted back per step
};

// A store-side source of background work. MaintenanceStep() runs on a
// scheduler worker thread, does at most `quota` work, and returns true
// when it knows more work remains (the scheduler re-queues the source
// without waiting for another signal). Implementations must be safe to
// run concurrently with the store's foreground operations and must make
// progress per step (a step that can do nothing returns false).
class BackgroundMaintainer {
 public:
  virtual ~BackgroundMaintainer() = default;
  virtual bool MaintenanceStep(const MaintenanceQuota& quota) = 0;
};

struct SchedulerStats {
  uint64_t steps = 0;      // MaintenanceStep invocations completed
  uint64_t signals = 0;    // Signal() calls that reached the queue path
  uint64_t coalesced = 0;  // Signal() calls absorbed by a pending flag
  uint64_t requeues = 0;   // steps that reported more work remaining
};

// Owns the background maintenance worker threads and the per-source
// signal/drain protocol. Foreground threads call Signal() from the op
// path; its fast path is a single atomic exchange when a signal is
// already pending (the common case under sustained pressure), so the
// op path never takes the scheduler mutex while maintenance is queued.
//
// Per-source state machine (pending / queued / running):
//   - Signal sets `pending`; if the source is neither queued nor mid-step
//     it is enqueued. Signals during a step are not lost: the worker
//     clears `pending` when the step starts and re-queues the source
//     afterwards if it was set again (or the step reported more work).
//   - Deregister tombstones the source and blocks until any in-flight
//     step finishes, so a store can destroy members the step touches
//     immediately after Deregister returns. Handles are never reused.
//   - Quiesce waits until no source is pending, queued, or running —
//     the quiescent point invariant checkers and checkpoints need.
//
// Shutdown ordering: Stop() (or the destructor) wakes and joins every
// worker; a mid-step worker finishes its step first, so after Stop no
// step is running. Stores must Deregister before the components their
// steps touch are destroyed; composites therefore declare the scheduler
// before their shards so it outlives them.
class MaintenanceScheduler {
 public:
  struct Options {
    uint32_t workers = 1;  // clamped to >= 1
    MaintenanceQuota quota;
  };

  struct Source;  // opaque to callers
  using Handle = Source*;

  MaintenanceScheduler();  // Options defaults
  explicit MaintenanceScheduler(Options options);
  ~MaintenanceScheduler();

  MaintenanceScheduler(const MaintenanceScheduler&) = delete;
  MaintenanceScheduler& operator=(const MaintenanceScheduler&) = delete;

  // Registers a work source. The maintainer must stay valid until
  // Deregister(handle) returns.
  Handle Register(BackgroundMaintainer* maintainer);

  // Removes the source and blocks until any in-flight step on it has
  // finished. Safe to call with a null handle (no-op). After return the
  // scheduler holds no reference to the maintainer.
  void Deregister(Handle h);

  // Requests a maintenance step for the source. Cheap and lock-free when
  // a signal is already pending; otherwise takes the scheduler mutex
  // briefly to enqueue. Safe from any thread, including during steps.
  void Signal(Handle h);

  // Blocks until every signal has been drained: no source pending,
  // queued, or running. Returns immediately after Stop().
  void Quiesce();

  // Joins all workers. Queued work is dropped; in-flight steps complete.
  // Idempotent. Signal() after Stop() is a no-op.
  void Stop();

  SchedulerStats stats() const;
  const Options& options() const { return options_; }

  struct Source {
    BackgroundMaintainer* maintainer = nullptr;  // null once tombstoned
    // Set by Signal before the enqueue attempt; cleared by the worker at
    // step start. Atomic so the Signal fast path never takes mu_.
    std::atomic<bool> pending{false};
    bool queued = false;   // in queue_ (guarded by scheduler mu_)
    bool running = false;  // a worker is inside MaintenanceStep
  };

 private:
  void WorkerLoop();

  Options options_;
  // Queue latch. Rank 4 — the leaf of the global lock order: Signal()
  // runs on op paths (possibly under store locks) and workers release it
  // before running a step, so it must never wrap another lock on the
  // list (common/lock_order.h).
  mutable Mutex mu_ ACQUIRED_AFTER(lock_rank::kCacheShard);
  std::condition_variable_any work_cv_;  // queue became non-empty / stopping
  std::condition_variable_any idle_cv_;  // a step finished / source removed
  std::deque<Source*> queue_ GUARDED_BY(mu_);
  std::vector<std::unique_ptr<Source>> sources_ GUARDED_BY(mu_);
  bool stopping_ GUARDED_BY(mu_) = false;
  uint64_t steps_ GUARDED_BY(mu_) = 0;
  uint64_t signals_ GUARDED_BY(mu_) = 0;
  uint64_t requeues_ GUARDED_BY(mu_) = 0;
  std::atomic<uint64_t> coalesced_{0};
  Mutex join_mu_;  // serializes worker joins across concurrent Stop()s
  std::vector<std::thread> workers_ GUARDED_BY(join_mu_);
};

}  // namespace costperf::maintenance

#endif  // COSTPERF_MAINTENANCE_SCHEDULER_H_
