#include "maintenance/scheduler.h"

#include <algorithm>

namespace costperf::maintenance {

MaintenanceScheduler::MaintenanceScheduler()
    : MaintenanceScheduler(Options()) {}

MaintenanceScheduler::MaintenanceScheduler(Options options)
    : options_(options) {
  if (options_.workers < 1) options_.workers = 1;
  MutexLock lock(&join_mu_);
  workers_.reserve(options_.workers);
  for (uint32_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

MaintenanceScheduler::~MaintenanceScheduler() { Stop(); }

MaintenanceScheduler::Handle MaintenanceScheduler::Register(
    BackgroundMaintainer* maintainer) {
  auto source = std::make_unique<Source>();
  source->maintainer = maintainer;
  Source* h = source.get();
  MutexLock lock(&mu_);
  sources_.push_back(std::move(source));
  return h;
}

void MaintenanceScheduler::Deregister(Handle h) {
  if (h == nullptr) return;
  MutexLock lock(&mu_);
  h->maintainer = nullptr;  // tombstone: no step starts after this
  if (h->queued) {
    queue_.erase(std::remove(queue_.begin(), queue_.end(), h), queue_.end());
    h->queued = false;
  }
  // A worker mid-step captured the maintainer pointer before we
  // tombstoned; wait it out so the caller can free step-visible state.
  while (h->running) idle_cv_.wait(mu_);
  idle_cv_.notify_all();  // h may have been the last obstacle to Quiesce
}

void MaintenanceScheduler::Signal(Handle h) {
  if (h == nullptr) return;
  // Fast path: a signal is already pending — the source is queued, or a
  // worker will observe the flag when its current step ends. One atomic
  // RMW, no mutex: this is what the foreground op path calls.
  if (h->pending.exchange(true, std::memory_order_acq_rel)) {
    coalesced_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  MutexLock lock(&mu_);
  signals_++;
  if (stopping_ || h->maintainer == nullptr) {
    // Nothing will ever claim this signal; clear the flag so Quiesce()
    // does not wait on a source that can no longer run.
    h->pending.store(false, std::memory_order_release);
    return;
  }
  if (!h->queued && !h->running) {
    h->queued = true;
    queue_.push_back(h);
    work_cv_.notify_one();
  }
  // If running: the worker re-checks `pending` after the step and
  // re-queues. If queued: the pending flag rides along with the entry.
}

void MaintenanceScheduler::WorkerLoop() {
  for (;;) {
    Source* s = nullptr;
    BackgroundMaintainer* maintainer = nullptr;
    {
      MutexLock lock(&mu_);
      while (!stopping_ && queue_.empty()) work_cv_.wait(mu_);
      if (stopping_) return;
      s = queue_.front();
      queue_.pop_front();
      s->queued = false;
      maintainer = s->maintainer;
      if (maintainer == nullptr) continue;  // tombstoned while queued
      s->running = true;
      // Claim every signal that arrived so far; later signals set the
      // flag again and we re-queue below.
      s->pending.store(false, std::memory_order_release);
    }
    // The step runs with no scheduler lock held; Deregister blocks on
    // `running`, so `maintainer` stays valid for the whole call.
    const bool more = maintainer->MaintenanceStep(options_.quota);
    {
      MutexLock lock(&mu_);
      s->running = false;
      steps_++;
      const bool resignaled = s->pending.load(std::memory_order_acquire);
      if (more) requeues_++;
      if ((more || resignaled) && s->maintainer != nullptr && !s->queued &&
          !stopping_) {
        s->queued = true;
        queue_.push_back(s);
        work_cv_.notify_one();
      }
      idle_cv_.notify_all();
    }
  }
}

void MaintenanceScheduler::Quiesce() {
  MutexLock lock(&mu_);
  for (;;) {
    if (stopping_) return;
    bool busy = !queue_.empty();
    for (const auto& s : sources_) {
      if (s->maintainer == nullptr) continue;
      // `pending` set with the source neither queued nor running means a
      // Signal's slow half is in flight between its exchange and its
      // enqueue — it will queue momentarily, so wait for that too.
      if (s->running || s->queued ||
          s->pending.load(std::memory_order_acquire)) {
        busy = true;
      }
    }
    if (!busy) return;
    idle_cv_.wait(mu_);
  }
}

void MaintenanceScheduler::Stop() {
  {
    MutexLock lock(&mu_);
    stopping_ = true;
    work_cv_.notify_all();
    idle_cv_.notify_all();
  }
  // Serialize joining so concurrent Stop() calls both return only after
  // every worker has exited.
  MutexLock join_lock(&join_mu_);
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

SchedulerStats MaintenanceScheduler::stats() const {
  MutexLock lock(&mu_);
  SchedulerStats s;
  s.steps = steps_;
  s.signals = signals_;
  s.coalesced = coalesced_.load(std::memory_order_relaxed);
  s.requeues = requeues_;
  return s;
}

}  // namespace costperf::maintenance
