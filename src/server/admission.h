#ifndef COSTPERF_SERVER_ADMISSION_H_
#define COSTPERF_SERVER_ADMISSION_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "core/kv_store.h"

namespace costperf::server {

// Tenant ids arrive verbatim from the wire, so tracked-tenant maps must be
// bounded: past a cap, unseen ids fold into this shared overflow bucket
// (a genuine tenant using this id merges with it — documented, harmless).
inline constexpr uint32_t kOverflowTenantId = 0xFFFFFFFFu;

// Per-tenant request accounting. Tenants are named by the u32 tenant_id on
// every wire frame; counters are plain atomics so the I/O threads update
// them without coordination.
struct TenantCounters {
  std::atomic<uint64_t> requests{0};
  std::atomic<uint64_t> read_keys{0};
  std::atomic<uint64_t> write_keys{0};
  std::atomic<uint64_t> rejected{0};   // admission pushback refusals
  std::atomic<uint64_t> errors{0};     // malformed / failed requests
  std::atomic<uint64_t> bytes_in{0};
  std::atomic<uint64_t> bytes_out{0};
};

struct TenantSnapshot {
  uint32_t tenant_id = 0;
  uint64_t requests = 0;
  uint64_t read_keys = 0;
  uint64_t write_keys = 0;
  uint64_t rejected = 0;
  uint64_t errors = 0;
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
};

class TenantRegistry {
 public:
  explicit TenantRegistry(size_t max_tenants = 1024)
      : max_tenants_(max_tenants == 0 ? 1 : max_tenants) {}

  // Returns the counters for `tenant_id`, creating them on first sight.
  // The returned pointer stays valid for the registry's lifetime, so
  // connections cache it and the mutex is only taken on first contact.
  // Once max_tenants distinct ids are tracked, further ids share the
  // kOverflowTenantId bucket so a client spraying ids cannot grow the map
  // (or the STATS response) without bound.
  TenantCounters* Get(uint32_t tenant_id);

  std::vector<TenantSnapshot> Snapshot() const;

 private:
  const size_t max_tenants_;
  mutable Mutex mu_;
  // std::map, not unordered_map: stats output iterates in tenant order and
  // node-based maps keep TenantCounters addresses stable across inserts.
  std::map<uint32_t, TenantCounters> tenants_ GUARDED_BY(mu_);
};

// Write-stall backpressure, re-exported as per-tenant admission pushback.
//
// The store reports stalls it absorbed (write_stalls / stall_micros_total
// in KvStoreStats). When the server observes those counters advance, the
// foreground is outrunning log flush + eviction; instead of letting every
// tenant queue behind the stall, the server opens a pushback window during
// which tenants writing more than their fair share of the recent write
// traffic get kResourceExhausted error frames and must back off. Tenants
// under their share keep writing: the pushback is targeted, not global.
struct AdmissionOptions {
  double pushback_window_seconds = 0.25;
  // A tenant is over fair share when its fraction of recent write keys
  // exceeds share_slack / active_tenant_count.
  double share_slack = 1.25;
  // Ignore stall evidence until at least this many write keys have been
  // observed, so a cold start cannot trigger pushback.
  uint64_t min_write_keys = 256;
  // Share accounting is an exponentially-decayed window, not a lifetime
  // total: every half-life, each tenant's write_keys halve (entries that
  // reach zero are dropped). "Fair share of recent write traffic" then
  // actually means recent — a historical hog that went idle decays back
  // under its share, and a newly-aggressive tenant can't hide under a
  // large lifetime denominator. <= 0 disables decay.
  double share_halflife_seconds = 5.0;
  // Bound on distinct tenant ids tracked for share accounting; ids past
  // the cap share the kOverflowTenantId bucket (decay frees idle slots).
  size_t max_tracked_tenants = 1024;
};

class AdmissionController {
 public:
  AdmissionController(Clock* clock, AdmissionOptions options);

  // Feed the store's current stats; detects write_stalls advancing and
  // opens (or extends) the pushback window.
  void ObserveStoreStats(const core::KvStoreStats& stats);

  // Ask permission to apply `write_keys` writes for `tenant_id`. Always
  // records the traffic (the share estimate needs denied traffic too —
  // a rejected tenant that keeps retrying stays over its share).
  bool AdmitWrite(uint32_t tenant_id, uint64_t write_keys);

  bool in_pushback() const;
  uint64_t pushback_windows() const { return windows_.load(std::memory_order_relaxed); }
  uint64_t rejected() const { return rejected_.load(std::memory_order_relaxed); }

 private:
  struct TenantShare {
    uint64_t write_keys = 0;
  };

  // Applies any whole half-lives elapsed since the last decay to every
  // tracked share (dropping zeroed entries and rebuilding the total).
  void DecayShares(double now) REQUIRES(mu_);

  Clock* const clock_;
  const AdmissionOptions options_;

  mutable Mutex mu_;
  std::map<uint32_t, TenantShare> shares_ GUARDED_BY(mu_);
  uint64_t total_write_keys_ GUARDED_BY(mu_) = 0;
  double last_decay_ GUARDED_BY(mu_) = 0;
  uint64_t last_write_stalls_ GUARDED_BY(mu_) = 0;
  bool seen_stats_ GUARDED_BY(mu_) = false;
  double pushback_until_ GUARDED_BY(mu_) = 0;

  std::atomic<uint64_t> windows_{0};
  std::atomic<uint64_t> rejected_{0};
};

}  // namespace costperf::server

#endif  // COSTPERF_SERVER_ADMISSION_H_
