#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/coding.h"

namespace costperf::server {

SyncClient::~SyncClient() { Close(); }

Status SyncClient::Connect(const std::string& host, uint16_t port) {
  Close();
  fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return Status::IoError("socket: " + std::string(strerror(errno)));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::InvalidArgument("bad host: " + host);
  }
  if (connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status s = Status::IoError("connect: " + std::string(strerror(errno)));
    Close();
    return s;
  }
  int one = 1;
  setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Status::Ok();
}

void SyncClient::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
  outbuf_.clear();
  inbuf_.clear();
  in_consumed_ = 0;
}

uint32_t SyncClient::QueueGet(std::string_view key) {
  const uint32_t id = next_request_id_++;
  AppendFrame(&outbuf_, kOpGet, id, tenant_id_, key);
  return id;
}

uint32_t SyncClient::QueuePut(std::string_view key, std::string_view value) {
  const uint32_t id = next_request_id_++;
  std::string p;
  AppendLengthPrefixed(&p, key);
  p.append(value.data(), value.size());
  AppendFrame(&outbuf_, kOpPut, id, tenant_id_, p);
  return id;
}

uint32_t SyncClient::QueueDelete(std::string_view key) {
  const uint32_t id = next_request_id_++;
  AppendFrame(&outbuf_, kOpDelete, id, tenant_id_, key);
  return id;
}

uint32_t SyncClient::QueueMultiGet(std::span<const std::string> keys) {
  const uint32_t id = next_request_id_++;
  std::string p;
  PutFixed32(&p, static_cast<uint32_t>(keys.size()));
  for (const std::string& k : keys) AppendLengthPrefixed(&p, k);
  AppendFrame(&outbuf_, kOpMultiGet, id, tenant_id_, p);
  return id;
}

uint32_t SyncClient::QueueWriteBatch(std::span<const core::KvEntry> entries) {
  const uint32_t id = next_request_id_++;
  std::string p;
  PutFixed32(&p, static_cast<uint32_t>(entries.size()));
  for (const core::KvEntry& e : entries) {
    AppendLengthPrefixed(&p, e.first);
    AppendLengthPrefixed(&p, e.second);
  }
  AppendFrame(&outbuf_, kOpWriteBatch, id, tenant_id_, p);
  return id;
}

uint32_t SyncClient::QueueStats() {
  const uint32_t id = next_request_id_++;
  AppendFrame(&outbuf_, kOpStats, id, tenant_id_, {});
  return id;
}

Status SyncClient::Flush() {
  size_t sent = 0;
  while (sent < outbuf_.size()) {
    // MSG_NOSIGNAL so a server-side disconnect reads as EPIPE, not SIGPIPE.
    ssize_t w = send(fd_, outbuf_.data() + sent, outbuf_.size() - sent,
                     MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("write: " + std::string(strerror(errno)));
    }
    sent += static_cast<size_t>(w);
  }
  outbuf_.clear();
  return Status::Ok();
}

Status SyncClient::SendRaw(std::string_view bytes) {
  outbuf_.append(bytes.data(), bytes.size());
  return Flush();
}

Status SyncClient::FillTo(size_t bytes) {
  while (inbuf_.size() - in_consumed_ < bytes) {
    char buf[64 * 1024];
    ssize_t r = read(fd_, buf, sizeof(buf));
    if (r > 0) {
      inbuf_.append(buf, static_cast<size_t>(r));
      continue;
    }
    if (r == 0) return Status::Unavailable("peer closed");
    if (errno == EINTR) continue;
    return Status::IoError("read: " + std::string(strerror(errno)));
  }
  return Status::Ok();
}

Status SyncClient::ReadRawFrame(FrameHeader* header, std::string* payload) {
  Status s = FillTo(kHeaderSize);
  if (!s.ok()) return s;
  DecodeResult dr =
      DecodeHeader(inbuf_.data() + in_consumed_, inbuf_.size() - in_consumed_,
                   header);
  if (dr != DecodeResult::kOk) {
    return Status::Corruption(std::string("response header: ") +
                              DecodeResultName(dr));
  }
  s = FillTo(kHeaderSize + header->payload_len);
  if (!s.ok()) return s;
  payload->assign(inbuf_, in_consumed_ + kHeaderSize, header->payload_len);
  in_consumed_ += kHeaderSize + header->payload_len;
  if (in_consumed_ == inbuf_.size()) {
    inbuf_.clear();
    in_consumed_ = 0;
  }
  return Status::Ok();
}

Status SyncClient::ExpectPeerClose() {
  // Drain whatever remains; succeed when read() reports EOF.
  while (true) {
    char buf[4096];
    ssize_t r = read(fd_, buf, sizeof(buf));
    if (r == 0) return Status::Ok();
    if (r < 0) {
      if (errno == EINTR) continue;
      // Reset counts too: the peer is gone either way.
      if (errno == ECONNRESET) return Status::Ok();
      return Status::IoError("read: " + std::string(strerror(errno)));
    }
  }
}

Status SyncClient::ReadResponse(Response* out) {
  FrameHeader h;
  std::string payload;
  Status s = ReadRawFrame(&h, &payload);
  if (!s.ok()) return s;
  if ((h.opcode & kResponseBit) == 0) {
    return Status::Corruption("frame without response bit");
  }
  out->opcode = h.opcode & ~kResponseBit;
  out->request_id = h.request_id;
  out->code = StatusCode::kOk;
  out->value.clear();
  out->statuses.clear();
  out->values.clear();
  out->text.clear();

  std::string_view rest(payload);
  switch (out->opcode) {
    case kOpGet: {
      uint8_t code;
      if (!GetU8(&rest, &code)) return Status::Corruption("short GET response");
      out->code = DecodeStatusCode(code);
      out->value.assign(rest.data(), rest.size());
      return Status::Ok();
    }
    case kOpPut:
    case kOpDelete: {
      uint8_t code;
      if (!GetU8(&rest, &code)) return Status::Corruption("short response");
      out->code = DecodeStatusCode(code);
      return Status::Ok();
    }
    case kOpMultiGet: {
      uint32_t count;
      if (!GetU32(&rest, &count)) {
        return Status::Corruption("short MULTIGET response");
      }
      out->statuses.reserve(count);
      out->values.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        uint8_t code;
        std::string_view value;
        if (!GetU8(&rest, &code) || !GetLengthPrefixed(&rest, &value)) {
          return Status::Corruption("truncated MULTIGET response");
        }
        out->statuses.emplace_back(DecodeStatusCode(code));
        out->values.emplace_back(value);
      }
      return Status::Ok();
    }
    case kOpWriteBatch: {
      uint32_t count;
      if (!GetU32(&rest, &count)) {
        return Status::Corruption("short WRITEBATCH response");
      }
      if (rest.size() < count) {
        return Status::Corruption("truncated WRITEBATCH response");
      }
      out->statuses.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        out->statuses.emplace_back(
            DecodeStatusCode(static_cast<uint8_t>(rest[i])));
      }
      return Status::Ok();
    }
    case kOpStats: {
      out->text.assign(rest.data(), rest.size());
      return Status::Ok();
    }
    case kOpError: {
      uint8_t code;
      if (!GetU8(&rest, &code)) {
        return Status::Corruption("short error response");
      }
      out->code = DecodeStatusCode(code);
      out->text.assign(rest.data(), rest.size());
      return Status::Ok();
    }
    default:
      return Status::Corruption("unknown response opcode");
  }
}

Result<std::string> SyncClient::Get(std::string_view key) {
  QueueGet(key);
  Status s = Flush();
  if (!s.ok()) return s;
  Response r;
  s = ReadResponse(&r);
  if (!s.ok()) return s;
  if (r.code != StatusCode::kOk) return Status(r.code, r.text);
  return std::move(r.value);
}

Status SyncClient::Put(std::string_view key, std::string_view value) {
  QueuePut(key, value);
  Status s = Flush();
  if (!s.ok()) return s;
  Response r;
  s = ReadResponse(&r);
  if (!s.ok()) return s;
  return r.code == StatusCode::kOk ? Status::Ok() : Status(r.code, r.text);
}

Status SyncClient::Delete(std::string_view key) {
  QueueDelete(key);
  Status s = Flush();
  if (!s.ok()) return s;
  Response r;
  s = ReadResponse(&r);
  if (!s.ok()) return s;
  return r.code == StatusCode::kOk ? Status::Ok() : Status(r.code, r.text);
}

Status SyncClient::MultiGet(std::span<const std::string> keys,
                            core::BatchReadResult* out) {
  QueueMultiGet(keys);
  Status s = Flush();
  if (!s.ok()) return s;
  Response r;
  s = ReadResponse(&r);
  if (!s.ok()) return s;
  if (r.is_error()) return Status(r.code, r.text);
  out->Reset(r.statuses.size());
  for (size_t i = 0; i < r.statuses.size(); ++i) {
    out->statuses[i] = r.statuses[i];
    out->values[i] = std::move(r.values[i]);
  }
  return out->FirstError();
}

Status SyncClient::WriteBatch(std::span<const core::KvEntry> entries,
                              core::BatchWriteResult* out) {
  QueueWriteBatch(entries);
  Status s = Flush();
  if (!s.ok()) return s;
  Response r;
  s = ReadResponse(&r);
  if (!s.ok()) return s;
  if (r.is_error()) return Status(r.code, r.text);
  out->Reset(r.statuses.size());
  for (size_t i = 0; i < r.statuses.size(); ++i) {
    out->statuses[i] = r.statuses[i];
    if (r.statuses[i].ok()) ++out->ok_count;
  }
  return out->FirstError();
}

Result<std::map<std::string, uint64_t>> SyncClient::StatsMap() {
  QueueStats();
  Status s = Flush();
  if (!s.ok()) return s;
  Response r;
  s = ReadResponse(&r);
  if (!s.ok()) return s;
  if (r.is_error()) return Status(r.code, r.text);
  std::map<std::string, uint64_t> out;
  std::string_view text(r.text);
  while (!text.empty()) {
    size_t nl = text.find('\n');
    std::string_view line =
        nl == std::string_view::npos ? text : text.substr(0, nl);
    text.remove_prefix(nl == std::string_view::npos ? text.size() : nl + 1);
    size_t eq = line.find('=');
    if (eq == std::string_view::npos) continue;
    out[std::string(line.substr(0, eq))] =
        strtoull(std::string(line.substr(eq + 1)).c_str(), nullptr, 10);
  }
  return out;
}

}  // namespace costperf::server
