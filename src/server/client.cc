#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/coding.h"
#include "common/random.h"
#include "fault/net_fault.h"

namespace costperf::server {

SyncClient::SyncClient() = default;

SyncClient::~SyncClient() { Close(); }

Status SyncClient::Connect(const std::string& host, uint16_t port) {
  Close();
  host_ = host;
  port_ = port;
  fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return Status::IoError("socket: " + std::string(strerror(errno)));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::InvalidArgument("bad host: " + host);
  }
  if (connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (errno != EINTR) {
      Status s = Status::IoError("connect: " + std::string(strerror(errno)));
      Close();
      return s;
    }
    // EINTR on connect() does NOT abort the handshake — the SYN is in
    // flight and a retried connect() would fail EALREADY/EISCONN. Wait for
    // the socket to become writable, then read the real outcome from
    // SO_ERROR.
    pollfd p{};
    p.fd = fd_;
    p.events = POLLOUT;
    int rc;
    while ((rc = poll(&p, 1, -1)) < 0 && errno == EINTR) {
    }
    int err = 0;
    socklen_t elen = sizeof(err);
    if (rc < 0 ||
        getsockopt(fd_, SOL_SOCKET, SO_ERROR, &err, &elen) != 0 || err != 0) {
      Status s = Status::IoError(
          "connect: " + std::string(strerror(err != 0 ? err : errno)));
      Close();
      return s;
    }
  }
  int one = 1;
  setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  ApplyRecvTimeout();
  if (net_fault_ != nullptr) channel_ = net_fault_->NewChannel();
  return Status::Ok();
}

void SyncClient::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
  channel_.reset();
  outbuf_.clear();
  inbuf_.clear();
  in_consumed_ = 0;
}

void SyncClient::set_recv_timeout_millis(int millis) {
  recv_timeout_millis_ = millis;
  if (connected()) ApplyRecvTimeout();
}

void SyncClient::ApplyRecvTimeout() {
  if (fd_ < 0 || recv_timeout_millis_ <= 0) return;
  timeval tv{};
  tv.tv_sec = recv_timeout_millis_ / 1000;
  tv.tv_usec = (recv_timeout_millis_ % 1000) * 1000;
  setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

uint32_t SyncClient::QueueGet(std::string_view key) {
  const uint32_t id = next_request_id_++;
  AppendFrameDeadline(&outbuf_, kOpGet, id, tenant_id_, deadline_micros_, key);
  return id;
}

uint32_t SyncClient::QueuePut(std::string_view key, std::string_view value) {
  const uint32_t id = next_request_id_++;
  std::string p;
  AppendLengthPrefixed(&p, key);
  p.append(value.data(), value.size());
  AppendFrameDeadline(&outbuf_, kOpPut, id, tenant_id_, deadline_micros_, p);
  return id;
}

uint32_t SyncClient::QueueDelete(std::string_view key) {
  const uint32_t id = next_request_id_++;
  AppendFrameDeadline(&outbuf_, kOpDelete, id, tenant_id_, deadline_micros_,
                      key);
  return id;
}

uint32_t SyncClient::QueueMultiGet(std::span<const std::string> keys) {
  const uint32_t id = next_request_id_++;
  std::string p;
  PutFixed32(&p, static_cast<uint32_t>(keys.size()));
  for (const std::string& k : keys) AppendLengthPrefixed(&p, k);
  AppendFrameDeadline(&outbuf_, kOpMultiGet, id, tenant_id_, deadline_micros_,
                      p);
  return id;
}

uint32_t SyncClient::QueueWriteBatch(std::span<const core::KvEntry> entries) {
  const uint32_t id = next_request_id_++;
  std::string p;
  PutFixed32(&p, static_cast<uint32_t>(entries.size()));
  for (const core::KvEntry& e : entries) {
    AppendLengthPrefixed(&p, e.first);
    AppendLengthPrefixed(&p, e.second);
  }
  AppendFrameDeadline(&outbuf_, kOpWriteBatch, id, tenant_id_,
                      deadline_micros_, p);
  return id;
}

uint32_t SyncClient::QueueStats() {
  const uint32_t id = next_request_id_++;
  AppendFrame(&outbuf_, kOpStats, id, tenant_id_, {});
  return id;
}

uint32_t SyncClient::QueueHealth() {
  const uint32_t id = next_request_id_++;
  // Health probes carry no deadline: a probe should see the truth even
  // when the server is too loaded to meet data-path budgets.
  AppendFrame(&outbuf_, kOpHealth, id, tenant_id_, {});
  return id;
}

Status SyncClient::Flush() {
  size_t sent = 0;
  while (sent < outbuf_.size()) {
    // MSG_NOSIGNAL so a server-side disconnect reads as EPIPE, not SIGPIPE.
    ssize_t w =
        channel_ != nullptr
            ? channel_->Send(fd_, outbuf_.data() + sent, outbuf_.size() - sent,
                             MSG_NOSIGNAL)
            : send(fd_, outbuf_.data() + sent, outbuf_.size() - sent,
                   MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Only an injected stall produces EAGAIN on this blocking socket;
        // surface it instead of spinning forever.
        return Status::Unavailable("send stalled");
      }
      return Status::IoError("write: " + std::string(strerror(errno)));
    }
    sent += static_cast<size_t>(w);
  }
  outbuf_.clear();
  return Status::Ok();
}

Status SyncClient::SendRaw(std::string_view bytes) {
  outbuf_.append(bytes.data(), bytes.size());
  return Flush();
}

Status SyncClient::FillTo(size_t bytes) {
  while (inbuf_.size() - in_consumed_ < bytes) {
    char buf[64 * 1024];
    ssize_t r = channel_ != nullptr ? channel_->Read(fd_, buf, sizeof(buf))
                                    : read(fd_, buf, sizeof(buf));
    if (r > 0) {
      inbuf_.append(buf, static_cast<size_t>(r));
      continue;
    }
    if (r == 0) return Status::Unavailable("peer closed");
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      // SO_RCVTIMEO expired (or an injected read mute): the wedge detector.
      return Status::DeadlineExceeded("recv timeout");
    }
    return Status::IoError("read: " + std::string(strerror(errno)));
  }
  return Status::Ok();
}

Status SyncClient::ReadRawFrame(FrameHeader* header, std::string* payload) {
  Status s = FillTo(kHeaderSize);
  if (!s.ok()) return s;
  DecodeResult dr =
      DecodeHeader(inbuf_.data() + in_consumed_, inbuf_.size() - in_consumed_,
                   header);
  if (dr == DecodeResult::kNeedMore) {
    // A v2 header whose tail has not arrived yet (responses are v1 today,
    // but the client stays layout-agnostic).
    s = FillTo(kHeaderSizeV2);
    if (!s.ok()) return s;
    dr = DecodeHeader(inbuf_.data() + in_consumed_,
                      inbuf_.size() - in_consumed_, header);
  }
  if (dr != DecodeResult::kOk) {
    return Status::Corruption(std::string("response header: ") +
                              DecodeResultName(dr));
  }
  s = FillTo(header->header_size + header->payload_len);
  if (!s.ok()) return s;
  payload->assign(inbuf_, in_consumed_ + header->header_size,
                  header->payload_len);
  in_consumed_ += header->header_size + header->payload_len;
  if (in_consumed_ == inbuf_.size()) {
    inbuf_.clear();
    in_consumed_ = 0;
  }
  return Status::Ok();
}

Status SyncClient::ExpectPeerClose() {
  // Drain whatever remains; succeed when read() reports EOF.
  while (true) {
    char buf[4096];
    ssize_t r = read(fd_, buf, sizeof(buf));
    if (r == 0) return Status::Ok();
    if (r < 0) {
      if (errno == EINTR) continue;
      // Reset counts too: the peer is gone either way.
      if (errno == ECONNRESET) return Status::Ok();
      return Status::IoError("read: " + std::string(strerror(errno)));
    }
  }
}

Status SyncClient::ReadResponse(Response* out) {
  FrameHeader h;
  std::string payload;
  Status s = ReadRawFrame(&h, &payload);
  if (!s.ok()) return s;
  if ((h.opcode & kResponseBit) == 0) {
    return Status::Corruption("frame without response bit");
  }
  out->opcode = h.opcode & ~kResponseBit;
  out->request_id = h.request_id;
  out->code = StatusCode::kOk;
  out->value.clear();
  out->statuses.clear();
  out->values.clear();
  out->text.clear();
  out->retry_after_millis = 0;

  std::string_view rest(payload);
  switch (out->opcode) {
    case kOpGet: {
      uint8_t code;
      if (!GetU8(&rest, &code)) return Status::Corruption("short GET response");
      out->code = DecodeStatusCode(code);
      out->value.assign(rest.data(), rest.size());
      return Status::Ok();
    }
    case kOpPut:
    case kOpDelete: {
      uint8_t code;
      if (!GetU8(&rest, &code)) return Status::Corruption("short response");
      out->code = DecodeStatusCode(code);
      return Status::Ok();
    }
    case kOpMultiGet: {
      uint32_t count;
      if (!GetU32(&rest, &count)) {
        return Status::Corruption("short MULTIGET response");
      }
      out->statuses.reserve(count);
      out->values.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        uint8_t code;
        std::string_view value;
        if (!GetU8(&rest, &code) || !GetLengthPrefixed(&rest, &value)) {
          return Status::Corruption("truncated MULTIGET response");
        }
        out->statuses.emplace_back(DecodeStatusCode(code));
        out->values.emplace_back(value);
      }
      return Status::Ok();
    }
    case kOpWriteBatch: {
      uint32_t count;
      if (!GetU32(&rest, &count)) {
        return Status::Corruption("short WRITEBATCH response");
      }
      if (rest.size() < count) {
        return Status::Corruption("truncated WRITEBATCH response");
      }
      out->statuses.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        out->statuses.emplace_back(
            DecodeStatusCode(static_cast<uint8_t>(rest[i])));
      }
      return Status::Ok();
    }
    case kOpStats:
    case kOpHealth: {
      // HEALTH payloads are binary; stash raw bytes for Health() to parse.
      out->text.assign(rest.data(), rest.size());
      return Status::Ok();
    }
    case kOpError: {
      uint8_t code;
      if (!GetU8(&rest, &code) || !GetU32(&rest, &out->retry_after_millis)) {
        return Status::Corruption("short error response");
      }
      out->code = DecodeStatusCode(code);
      out->text.assign(rest.data(), rest.size());
      return Status::Ok();
    }
    default:
      return Status::Corruption("unknown response opcode");
  }
}

// Runs one request/response exchange, retrying under the policy when
// enabled. Transport failures tear down the connection (its pipeline state
// is unknown) and reconnect on the next attempt; retryable response codes
// (kUnavailable / kResourceExhausted) keep the connection and back off by
// max(policy backoff, the server's retry_after hint).
Status SyncClient::OneShot(const std::function<void()>& queue, Response* r) {
  const int attempts =
      retry_enabled_ ? std::max(1, retry_policy_.max_attempts) : 1;
  Random rng(retry_policy_.seed ^ Hash64(retry_salt_++));
  double backoff = static_cast<double>(retry_policy_.initial_backoff_nanos);
  auto back_off = [&](uint32_t retry_after_millis) {
    double scale = 1.0;
    if (retry_policy_.jitter > 0.0) {
      scale = 1.0 - retry_policy_.jitter * rng.NextDouble();
    }
    uint64_t nanos = static_cast<uint64_t>(backoff * scale);
    const uint64_t hint = uint64_t{retry_after_millis} * 1'000'000ull;
    if (hint > nanos) nanos = hint;  // the server knows its recovery horizon
    backoff *= retry_policy_.multiplier;
    if (retry_policy_.sleep) {
      retry_policy_.sleep(nanos);
    } else if (nanos > 0) {
      std::this_thread::sleep_for(std::chrono::nanoseconds(nanos));
    }
  };
  Status last = Status::Ok();
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) ++retries_;
    if (!connected()) {
      if (host_.empty()) return Status::InvalidArgument("not connected");
      last = Connect(host_, port_);
      if (!last.ok()) {
        if (attempt + 1 == attempts) break;
        back_off(0);
        continue;
      }
    }
    queue();
    last = Flush();
    if (last.ok()) last = ReadResponse(r);
    if (!last.ok()) {
      // The connection's request/response alignment is now unknown.
      Close();
      if (!retry_enabled_ || !IsTransientError(last)) return last;
      if (attempt + 1 == attempts) break;
      back_off(0);
      continue;
    }
    if (retry_enabled_ && (r->code == StatusCode::kUnavailable ||
                           r->code == StatusCode::kResourceExhausted)) {
      last = Status(r->code, r->text);
      if (attempt + 1 == attempts) break;
      back_off(r->retry_after_millis);
      continue;
    }
    return Status::Ok();
  }
  ++give_ups_;
  return last;
}

Result<std::string> SyncClient::Get(std::string_view key) {
  Response r;
  Status s = OneShot([&] { QueueGet(key); }, &r);
  if (!s.ok()) return s;
  if (r.code != StatusCode::kOk) return Status(r.code, r.text);
  return std::move(r.value);
}

Status SyncClient::Put(std::string_view key, std::string_view value) {
  Response r;
  Status s = OneShot([&] { QueuePut(key, value); }, &r);
  if (!s.ok()) return s;
  return r.code == StatusCode::kOk ? Status::Ok() : Status(r.code, r.text);
}

Status SyncClient::Delete(std::string_view key) {
  Response r;
  Status s = OneShot([&] { QueueDelete(key); }, &r);
  if (!s.ok()) return s;
  return r.code == StatusCode::kOk ? Status::Ok() : Status(r.code, r.text);
}

Status SyncClient::MultiGet(std::span<const std::string> keys,
                            core::BatchReadResult* out) {
  Response r;
  Status s = OneShot([&] { QueueMultiGet(keys); }, &r);
  if (!s.ok()) return s;
  if (r.is_error()) return Status(r.code, r.text);
  out->Reset(r.statuses.size());
  for (size_t i = 0; i < r.statuses.size(); ++i) {
    out->statuses[i] = r.statuses[i];
    out->values[i] = std::move(r.values[i]);
  }
  return out->FirstError();
}

Status SyncClient::WriteBatch(std::span<const core::KvEntry> entries,
                              core::BatchWriteResult* out) {
  Response r;
  Status s = OneShot([&] { QueueWriteBatch(entries); }, &r);
  if (!s.ok()) return s;
  if (r.is_error()) return Status(r.code, r.text);
  out->Reset(r.statuses.size());
  for (size_t i = 0; i < r.statuses.size(); ++i) {
    out->statuses[i] = r.statuses[i];
    if (r.statuses[i].ok()) ++out->ok_count;
  }
  return out->FirstError();
}

Result<std::map<std::string, uint64_t>> SyncClient::StatsMap() {
  QueueStats();
  Status s = Flush();
  if (!s.ok()) return s;
  Response r;
  s = ReadResponse(&r);
  if (!s.ok()) return s;
  if (r.is_error()) return Status(r.code, r.text);
  std::map<std::string, uint64_t> out;
  std::string_view text(r.text);
  while (!text.empty()) {
    size_t nl = text.find('\n');
    std::string_view line =
        nl == std::string_view::npos ? text : text.substr(0, nl);
    text.remove_prefix(nl == std::string_view::npos ? text.size() : nl + 1);
    size_t eq = line.find('=');
    if (eq == std::string_view::npos) continue;
    out[std::string(line.substr(0, eq))] =
        strtoull(std::string(line.substr(eq + 1)).c_str(), nullptr, 10);
  }
  return out;
}

Status SyncClient::Health(HealthReport* out) {
  QueueHealth();
  Status s = Flush();
  if (!s.ok()) return s;
  Response r;
  s = ReadResponse(&r);
  if (!s.ok()) return s;
  if (r.is_error()) return Status(r.code, r.text);
  if (r.opcode != kOpHealth) return Status::Corruption("not a HEALTH response");
  std::string_view rest(r.text);
  uint8_t overall = 0;
  uint32_t shard_count = 0;
  if (!GetU8(&rest, &overall) || !GetU32(&rest, &out->retry_after_millis) ||
      !GetU32(&rest, &shard_count) || rest.size() < shard_count + 4 * 8) {
    return Status::Corruption("short HEALTH response");
  }
  out->degraded = overall != 0;
  out->shards.clear();
  out->shards.reserve(shard_count);
  for (uint32_t i = 0; i < shard_count; ++i) {
    out->shards.push_back(rest[i] != 0 ? core::HealthStatus::kDegraded
                                       : core::HealthStatus::kHealthy);
  }
  rest.remove_prefix(shard_count);
  out->shed_frames = DecodeFixed64(rest.data());
  out->deadline_expired = DecodeFixed64(rest.data() + 8);
  out->watchdog_kills = DecodeFixed64(rest.data() + 16);
  out->degraded_write_rejects = DecodeFixed64(rest.data() + 24);
  return Status::Ok();
}

}  // namespace costperf::server
