#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <span>
#include <unordered_map>
#include <utility>

#include "common/coding.h"
#include "fault/net_fault.h"

namespace costperf::server {

namespace {
// epoll_event.data.u64 tags for the two non-connection fds. Conn pointers
// are heap-allocated and aligned, so they can never collide with 0 or 1.
constexpr uint64_t kListenerTag = 0;
constexpr uint64_t kWakeTag = 1;

constexpr size_t kReadChunk = 64 * 1024;
// Upper bound on keys/entries one frame may carry; 8 bytes is the minimum
// wire cost per element, so this also follows from kMaxPayloadLen, but an
// explicit cap keeps the arithmetic obvious.
constexpr uint32_t kMaxBatchElements = 1u << 20;
// "No shed boundary set" sentinel for Conn::shed_boundary.
constexpr uint64_t kNoShed = ~uint64_t{0};
}  // namespace

// Per-connection state. A connection lives on exactly one I/O thread, so
// none of this needs synchronization.
struct Server::Conn {
  int fd = -1;
  IoThread* owner = nullptr;
  uint32_t interest = 0;  // epoll events currently registered
  bool close_after_flush = false;

  std::string in;          // [in_consumed, in.size()) not yet parsed
  size_t in_consumed = 0;
  std::string out;         // [out_sent, out.size()) not yet written
  size_t out_sent = 0;

  // Optional fault-injection wrapper around read()/send(); null in
  // production (ServerOptions::net_fault unset).
  std::unique_ptr<fault::NetChannel> channel;

  // Stream offset (bytes ever received) of in[0]; lets shed_boundary
  // survive buffer compaction.
  uint64_t stream_base = 0;
  // Queue-depth shed: frames whose first byte lies at or past this stream
  // offset arrived into an over-budget backlog and are answered
  // kUnavailable until the backlog drains. kNoShed = not shedding.
  uint64_t shed_boundary = kNoShed;
  // When the bytes now buffered were received (micros); deadline budgets
  // are measured from here.
  uint64_t recv_micros = 0;
  // Wall time (seconds) of the last write progress while output remains
  // unsent; 0 = not write-blocked. The watchdog kills connections blocked
  // past ServerOptions::write_stall_timeout_seconds.
  double blocked_since = 0;

  // Cached tenant-counters pointer; refreshed when tenant_id changes so
  // the registry mutex is off the per-frame path.
  uint32_t tenant_id = 0;
  TenantCounters* tenant = nullptr;
  bool tenant_valid = false;

  size_t unsent() const { return out.size() - out_sent; }
};

// Per-thread event loop state plus reusable window-batching scratch. The
// scratch vectors only ever grow, so steady-state window processing does
// not allocate.
struct Server::IoThread {
  size_t index = 0;
  Server* server = nullptr;
  int epoll_fd = -1;
  int wake_fd = -1;
  std::thread thread;
  std::unordered_map<int, std::unique_ptr<Conn>> conns;

  Mutex pending_mu;
  std::vector<int> pending GUARDED_BY(pending_mu);

  // Which run is open: adjacent reads (GET/MULTIGET) coalesce into one
  // MultiGet; adjacent writes (PUT/WRITEBATCH) into one WriteBatch. Only
  // one run is open at a time, so emitting in run order preserves the
  // request order responses must follow.
  enum class Run { kNone, kRead, kWrite };
  Run open_run = Run::kNone;

  struct ReadSeg {
    uint8_t op;
    uint32_t request_id;
    uint32_t tenant_id;
    size_t start;
    size_t count;
    uint64_t expire_micros;  // absolute deadline; 0 = none
    bool expired;
  };
  std::vector<std::string> read_keys;  // slots reused across windows
  size_t read_used = 0;
  std::vector<ReadSeg> read_segs;
  core::BatchReadResult read_result;

  struct WriteSeg {
    uint8_t op;
    uint32_t request_id;
    uint32_t tenant_id;
    size_t start;
    size_t count;
    uint64_t expire_micros;  // absolute deadline; 0 = none
    bool expired;
  };
  std::vector<core::KvEntry> write_entries;  // slots reused across windows
  size_t write_used = 0;
  std::vector<WriteSeg> write_segs;
  core::BatchWriteResult write_result;

  std::string payload_scratch;

  // Watchdog sweep state: next sweep time and victim scratch (reused so a
  // sweep does not allocate in steady state).
  double next_watchdog = 0;
  std::vector<int> watchdog_victims;

  std::string* NextReadKey() {
    if (read_keys.size() <= read_used) read_keys.emplace_back();
    return &read_keys[read_used++];
  }
  core::KvEntry* NextWriteEntry() {
    if (write_entries.size() <= write_used) write_entries.emplace_back();
    return &write_entries[write_used++];
  }
};

Server::Server(core::KvStore* store, ServerOptions options, Clock* clock)
    : store_(store),
      options_(std::move(options)),
      clock_(clock != nullptr ? clock : &default_clock_),
      tenants_(options_.max_tracked_tenants),
      admission_(clock_, options_.admission) {}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("server already started");
  }
  if (options_.io_threads < 1) {
    return Status::InvalidArgument("io_threads must be >= 1");
  }
  if (options_.io_threads > 1 && !store_->ConcurrentSafe()) {
    return Status::InvalidArgument(
        "store is not ConcurrentSafe; use io_threads=1 or a sharded store");
  }

  listen_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (listen_fd_ < 0) return Status::IoError("socket: " + std::string(strerror(errno)));
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad host: " + options_.host);
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status s = Status::IoError("bind: " + std::string(strerror(errno)));
    close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  if (listen(listen_fd_, 512) != 0) {
    Status s = Status::IoError("listen: " + std::string(strerror(errno)));
    close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  sockaddr_in bound{};
  socklen_t blen = sizeof(bound);
  getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &blen);
  port_ = ntohs(bound.sin_port);

  stopping_.store(false, std::memory_order_release);
  io_threads_.clear();
  thread_counters_.clear();
  for (int i = 0; i < options_.io_threads; ++i) {
    auto t = std::make_unique<IoThread>();
    t->index = static_cast<size_t>(i);
    t->server = this;
    t->epoll_fd = epoll_create1(0);
    t->wake_fd = eventfd(0, EFD_NONBLOCK);
    if (t->epoll_fd < 0 || t->wake_fd < 0) {
      Stop();
      return Status::IoError("epoll/eventfd setup failed");
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kWakeTag;
    epoll_ctl(t->epoll_fd, EPOLL_CTL_ADD, t->wake_fd, &ev);
    if (i == 0) {
      epoll_event lev{};
      lev.events = EPOLLIN;
      lev.data.u64 = kListenerTag;
      epoll_ctl(t->epoll_fd, EPOLL_CTL_ADD, listen_fd_, &lev);
    }
    thread_counters_.push_back(std::make_unique<ThreadCounters>());
    io_threads_.push_back(std::move(t));
  }
  running_.store(true, std::memory_order_release);
  for (auto& t : io_threads_) {
    IoThread* raw = t.get();
    raw->thread = std::thread([this, raw] { IoLoop(raw); });
  }
  return Status::Ok();
}

void Server::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    // Never started (or already stopped): still tear down half-built state.
    for (auto& t : io_threads_) {
      if (t->thread.joinable()) t->thread.join();
      if (t->wake_fd >= 0) close(t->wake_fd);
      if (t->epoll_fd >= 0) close(t->epoll_fd);
    }
    io_threads_.clear();
    if (listen_fd_ >= 0) {
      close(listen_fd_);
      listen_fd_ = -1;
    }
    return;
  }
  stopping_.store(true, std::memory_order_release);
  for (auto& t : io_threads_) {
    uint64_t one = 1;
    ssize_t ignored = write(t->wake_fd, &one, sizeof(one));
    (void)ignored;
  }
  for (auto& t : io_threads_) {
    if (t->thread.joinable()) t->thread.join();
  }
  for (auto& t : io_threads_) {
    // A woken IoLoop exits without adopting handoffs, so fds accepted on
    // thread 0 but not yet adopted here would otherwise leak past Stop.
    // All threads are joined by now, so nobody pushes concurrently.
    std::vector<int> orphaned;
    {
      MutexLock lock(&t->pending_mu);
      orphaned.swap(t->pending);
    }
    for (int fd : orphaned) {
      close(fd);
      thread_counters_[t->index]->connections_closed.fetch_add(
          1, std::memory_order_relaxed);
    }
    if (t->wake_fd >= 0) close(t->wake_fd);
    if (t->epoll_fd >= 0) close(t->epoll_fd);
  }
  io_threads_.clear();
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
}

void Server::IoLoop(IoThread* t) {
  epoll_event events[128];
  while (!stopping_.load(std::memory_order_acquire)) {
    int n = epoll_wait(t->epoll_fd, events, 128, 100);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      if (events[i].data.u64 == kListenerTag) {
        AcceptReady(t);
        continue;
      }
      if (events[i].data.u64 == kWakeTag) {
        uint64_t drain;
        ssize_t ignored = read(t->wake_fd, &drain, sizeof(drain));
        (void)ignored;
        AdoptPending(t);
        continue;
      }
      HandleConnEvent(t, static_cast<Conn*>(events[i].data.ptr),
                      events[i].events);
    }
    MaybePollStoreStats();
    WatchdogSweep(t);
  }
  // Graceful-ish teardown: one best-effort flush per connection, then
  // close everything this thread owns.
  for (auto& [fd, conn] : t->conns) {
    (void)FlushOutput(t, conn.get());
    close(conn->fd);
    thread_counters_[t->index]->connections_closed.fetch_add(
        1, std::memory_order_relaxed);
  }
  t->conns.clear();
}

void Server::AcceptReady(IoThread* t) {
  while (true) {
    int fd = accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;
    }
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    thread_counters_[t->index]->connections_accepted.fetch_add(
        1, std::memory_order_relaxed);
    size_t target = next_thread_.fetch_add(1, std::memory_order_relaxed) %
                    io_threads_.size();
    IoThread* dst = io_threads_[target].get();
    if (dst == t) {
      auto conn = MakeConn(t, fd);
      epoll_event ev{};
      ev.events = conn->interest;
      ev.data.ptr = conn.get();
      epoll_ctl(t->epoll_fd, EPOLL_CTL_ADD, fd, &ev);
      t->conns.emplace(fd, std::move(conn));
    } else {
      {
        MutexLock lock(&dst->pending_mu);
        dst->pending.push_back(fd);
      }
      uint64_t wake = 1;
      ssize_t ignored = write(dst->wake_fd, &wake, sizeof(wake));
      (void)ignored;
    }
  }
}

void Server::AdoptPending(IoThread* t) {
  std::vector<int> fds;
  {
    MutexLock lock(&t->pending_mu);
    fds.swap(t->pending);
  }
  for (int fd : fds) {
    auto conn = MakeConn(t, fd);
    epoll_event ev{};
    ev.events = conn->interest;
    ev.data.ptr = conn.get();
    epoll_ctl(t->epoll_fd, EPOLL_CTL_ADD, fd, &ev);
    t->conns.emplace(fd, std::move(conn));
  }
}

std::unique_ptr<Server::Conn> Server::MakeConn(IoThread* t, int fd) {
  auto conn = std::make_unique<Conn>();
  conn->fd = fd;
  conn->owner = t;
  conn->interest = EPOLLIN;
  // Channels are created in adoption order on each thread; with one I/O
  // thread (the chaos-test configuration) that is exactly accept order, so
  // scripted per-connection plans line up deterministically.
  if (options_.net_fault != nullptr) {
    conn->channel = options_.net_fault->NewChannel();
  }
  return conn;
}

void Server::WatchdogSweep(IoThread* t) {
  if (options_.write_stall_timeout_seconds <= 0) return;
  const double now = clock_->NowSeconds();
  if (now < t->next_watchdog) return;
  t->next_watchdog = now + options_.watchdog_poll_seconds;
  for (auto& [fd, conn] : t->conns) {
    if (conn->unsent() > 0 && conn->blocked_since > 0 &&
        now - conn->blocked_since > options_.write_stall_timeout_seconds) {
      t->watchdog_victims.push_back(fd);
    }
  }
  for (int fd : t->watchdog_victims) {
    auto it = t->conns.find(fd);
    if (it == t->conns.end()) continue;
    thread_counters_[t->index]->watchdog_kills.fetch_add(
        1, std::memory_order_relaxed);
    CloseConn(t, it->second.get());
  }
  t->watchdog_victims.clear();
}

void Server::HandleConnEvent(IoThread* t, Conn* c, uint32_t events) {
  if (events & (EPOLLHUP | EPOLLERR)) {
    CloseConn(t, c);
    return;
  }
  if (events & EPOLLOUT) {
    if (!FlushOutput(t, c)) {
      CloseConn(t, c);
      return;
    }
    if (c->close_after_flush && c->unsent() == 0) {
      CloseConn(t, c);
      return;
    }
    // Draining output may unblock frames parked behind backpressure;
    // DrainAndProcess reads EAGAIN immediately and resumes them.
    if (!c->close_after_flush && !DrainAndProcess(t, c)) {
      CloseConn(t, c);
      return;
    }
  }
  if (events & EPOLLIN) {
    if (!DrainAndProcess(t, c)) {
      CloseConn(t, c);
      return;
    }
  }
  UpdateInterest(t, c);
}

bool Server::DrainAndProcess(IoThread* t, Conn* c) {
  bool peer_closed = false;
  bool got_bytes = false;
  while (true) {
    size_t old_size = c->in.size();
    c->in.resize(old_size + kReadChunk);
    ssize_t r = c->channel != nullptr
                    ? c->channel->Read(c->fd, c->in.data() + old_size,
                                       kReadChunk)
                    : read(c->fd, c->in.data() + old_size, kReadChunk);
    if (r > 0) {
      c->in.resize(old_size + static_cast<size_t>(r));
      got_bytes = true;
      thread_counters_[t->index]->bytes_in.fetch_add(
          static_cast<uint64_t>(r), std::memory_order_relaxed);
      if (static_cast<size_t>(r) < kReadChunk) break;
      continue;
    }
    c->in.resize(old_size);
    if (r == 0) {
      peer_closed = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    return false;  // hard socket error
  }
  if (got_bytes) {
    // Deadline budgets run from receipt. Frames parked across passes (by
    // backpressure or the window cap) keep their older stamp, so age-based
    // shedding sees them grow stale.
    c->recv_micros = NowMicros();
    // Queue-depth shed: everything past the budget point arrived into an
    // over-full backlog; answer it kUnavailable until the queue empties.
    const size_t backlog = c->in.size() - c->in_consumed;
    if (options_.shed_backlog_bytes != 0 && c->shed_boundary == kNoShed &&
        backlog > options_.shed_backlog_bytes) {
      c->shed_boundary =
          c->stream_base + c->in_consumed + options_.shed_backlog_bytes;
    }
  }

  // Each ProcessFrames pass handles up to max_pipeline_frames; loop until
  // the buffered stream yields no further progress (need more bytes) or
  // output backpressure asks us to pause — EPOLLOUT resumes us then.
  while (true) {
    const size_t before = c->in.size() - c->in_consumed;
    if (!ProcessFrames(t, c)) {
      // Protocol violation: the error frame is queued; flush what we can
      // and only linger if the kernel couldn't take it all.
      (void)FlushOutput(t, c);
      return c->unsent() > 0;  // keep around solely to drain the error
    }
    if (!FlushOutput(t, c)) return false;
    if (c->in.size() - c->in_consumed == before) break;
    if (c->unsent() >= options_.output_buffer_soft_limit) break;
  }
  if (peer_closed) {
    // Peer half-closed after a clean request stream: answer what we can,
    // then finish.
    c->close_after_flush = true;
    return c->unsent() > 0;
  }
  return true;
}

bool Server::ProcessFrames(IoThread* t, Conn* c) {
  ThreadCounters& tc = *thread_counters_[t->index];
  t->open_run = IoThread::Run::kNone;
  t->read_used = 0;
  t->read_segs.clear();
  t->write_used = 0;
  t->write_segs.clear();

  auto flush_runs = [&] {
    if (t->open_run == IoThread::Run::kRead) ExecuteReadRun(t, c);
    if (t->open_run == IoThread::Run::kWrite) ExecuteWriteRun(t, c);
    t->open_run = IoThread::Run::kNone;
  };

  size_t frames = 0;
  bool fatal = false;
  while (frames < options_.max_pipeline_frames && !fatal) {
    const char* base = c->in.data() + c->in_consumed;
    const size_t avail = c->in.size() - c->in_consumed;
    FrameHeader h;
    DecodeResult dr = DecodeHeader(base, avail, &h);
    if (dr == DecodeResult::kNeedMore) break;
    if (dr != DecodeResult::kOk) {
      // The stream offset itself is untrustworthy; answer with a final
      // error frame and hang up.
      flush_runs();
      tc.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      EmitError(c, 0, 0, StatusCode::kInvalidArgument,
                std::string("unrecoverable frame: ") + DecodeResultName(dr));
      c->close_after_flush = true;
      fatal = true;
      break;
    }
    if (avail < h.header_size + h.payload_len) break;  // wait for payload
    const uint64_t frame_off = c->stream_base + c->in_consumed;
    std::string_view payload(base + h.header_size, h.payload_len);
    c->in_consumed += h.header_size + h.payload_len;
    ++frames;
    tc.frames_in.fetch_add(1, std::memory_order_relaxed);
    TenantCounters* tenant = TenantFor(c, h.tenant_id);
    tenant->requests.fetch_add(1, std::memory_order_relaxed);
    tenant->bytes_in.fetch_add(h.header_size + h.payload_len,
                               std::memory_order_relaxed);

    // Shed/deadline gate — decided before any staging or store work.
    // flush_runs() first keeps responses in request order: staged runs
    // answer before the error frame does.
    const uint64_t expire_micros =
        h.deadline_micros != 0 ? c->recv_micros + h.deadline_micros : 0;
    if (frame_off >= c->shed_boundary) {  // kNoShed compares as "never"
      flush_runs();
      tc.shed_frames.fetch_add(1, std::memory_order_relaxed);
      tenant->rejected.fetch_add(1, std::memory_order_relaxed);
      EmitError(c, h.request_id, h.tenant_id, StatusCode::kUnavailable,
                "input backlog over budget; request shed",
                options_.retry_after_millis);
      continue;
    }
    if (expire_micros != 0 || options_.shed_age_micros != 0) {
      const uint64_t now_us = NowMicros();
      if (expire_micros != 0 && now_us > expire_micros) {
        flush_runs();
        tc.deadline_expired.fetch_add(1, std::memory_order_relaxed);
        tenant->errors.fetch_add(1, std::memory_order_relaxed);
        EmitError(c, h.request_id, h.tenant_id,
                  StatusCode::kDeadlineExceeded,
                  "deadline expired before execution");
        continue;
      }
      if (options_.shed_age_micros != 0 &&
          now_us - c->recv_micros > options_.shed_age_micros) {
        flush_runs();
        tc.shed_frames.fetch_add(1, std::memory_order_relaxed);
        tenant->rejected.fetch_add(1, std::memory_order_relaxed);
        EmitError(c, h.request_id, h.tenant_id, StatusCode::kUnavailable,
                  "request aged out in queue; shed",
                  options_.retry_after_millis);
        continue;
      }
    }

    switch (h.opcode) {
      case kOpGet: {
        if (t->open_run == IoThread::Run::kWrite) flush_runs();
        t->open_run = IoThread::Run::kRead;
        const size_t start = t->read_used;
        t->NextReadKey()->assign(payload.data(), payload.size());
        t->read_segs.push_back({h.opcode, h.request_id, h.tenant_id, start, 1,
                                expire_micros, false});
        tenant->read_keys.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      case kOpMultiGet: {
        std::string_view rest = payload;
        uint32_t count = 0;
        bool ok = GetU32(&rest, &count) && count <= kMaxBatchElements &&
                  static_cast<uint64_t>(count) * 4 <= rest.size();
        const size_t start = t->read_used;
        size_t got = 0;
        if (ok && t->open_run == IoThread::Run::kWrite) flush_runs();
        if (ok) t->open_run = IoThread::Run::kRead;
        for (uint32_t i = 0; ok && i < count; ++i) {
          std::string_view key;
          if (!GetLengthPrefixed(&rest, &key)) {
            ok = false;
            break;
          }
          t->NextReadKey()->assign(key.data(), key.size());
          ++got;
        }
        if (!ok) {
          // Unwind whatever this frame staged, report, keep the stream.
          // open_run may still be kWrite here (a count-check failure
          // happens before the run switch), and that run holds staged
          // writes flush_runs() must execute — only a read run this frame
          // emptied may be cancelled.
          t->read_used = start;
          if (t->open_run == IoThread::Run::kRead && t->read_used == 0 &&
              t->read_segs.empty()) {
            t->open_run = IoThread::Run::kNone;
          }
          flush_runs();
          tc.protocol_errors.fetch_add(1, std::memory_order_relaxed);
          tenant->errors.fetch_add(1, std::memory_order_relaxed);
          EmitError(c, h.request_id, h.tenant_id,
                    StatusCode::kInvalidArgument, "malformed MULTIGET payload");
          break;
        }
        t->read_segs.push_back(
            {h.opcode, h.request_id, h.tenant_id, start, got, expire_micros,
             false});
        tenant->read_keys.fetch_add(got, std::memory_order_relaxed);
        break;
      }
      case kOpPut:
      case kOpWriteBatch: {
        std::string_view rest = payload;
        uint32_t count = 1;
        bool ok = true;
        if (h.opcode == kOpWriteBatch) {
          ok = GetU32(&rest, &count) && count <= kMaxBatchElements &&
               static_cast<uint64_t>(count) * 8 <= rest.size();
        }
        if (ok && !admission_.AdmitWrite(h.tenant_id, count)) {
          flush_runs();
          tenant->rejected.fetch_add(1, std::memory_order_relaxed);
          EmitError(c, h.request_id, h.tenant_id,
                    StatusCode::kResourceExhausted,
                    "tenant over fair share during write pushback",
                    options_.retry_after_millis);
          break;
        }
        const size_t start = t->write_used;
        size_t got = 0;
        if (ok && t->open_run == IoThread::Run::kRead) flush_runs();
        if (ok) t->open_run = IoThread::Run::kWrite;
        for (uint32_t i = 0; ok && i < count; ++i) {
          std::string_view key, value;
          if (h.opcode == kOpPut) {
            // PUT: u32 klen, key, value = remainder.
            if (!GetLengthPrefixed(&rest, &key)) {
              ok = false;
              break;
            }
            value = rest;
            rest = {};
          } else if (!GetLengthPrefixed(&rest, &key) ||
                     !GetLengthPrefixed(&rest, &value)) {
            ok = false;
            break;
          }
          core::KvEntry* e = t->NextWriteEntry();
          e->first.assign(key.data(), key.size());
          e->second.assign(value.data(), value.size());
          ++got;
        }
        if (!ok) {
          // Mirror of the MULTIGET unwind: a still-open read run keeps its
          // staged GETs; only a write run this frame emptied is cancelled.
          t->write_used = start;
          if (t->open_run == IoThread::Run::kWrite && t->write_used == 0 &&
              t->write_segs.empty()) {
            t->open_run = IoThread::Run::kNone;
          }
          flush_runs();
          tc.protocol_errors.fetch_add(1, std::memory_order_relaxed);
          tenant->errors.fetch_add(1, std::memory_order_relaxed);
          EmitError(c, h.request_id, h.tenant_id,
                    StatusCode::kInvalidArgument, "malformed write payload");
          break;
        }
        t->write_segs.push_back(
            {h.opcode, h.request_id, h.tenant_id, start, got, expire_micros,
             false});
        tenant->write_keys.fetch_add(got, std::memory_order_relaxed);
        break;
      }
      case kOpDelete: {
        // Deletes are rare in the target workloads; they act as a run
        // barrier and execute inline. They still hit the write path (and
        // the log), so they go through admission like PUT/WRITEBATCH.
        flush_runs();
        if (!admission_.AdmitWrite(h.tenant_id, 1)) {
          tenant->rejected.fetch_add(1, std::memory_order_relaxed);
          EmitError(c, h.request_id, h.tenant_id,
                    StatusCode::kResourceExhausted,
                    "tenant over fair share during write pushback",
                    options_.retry_after_millis);
          break;
        }
        Status s = store_->Delete(Slice(payload.data(), payload.size()));
        if (s.IsIoError()) {
          // A write-path IoError may mean the shard just degraded; re-read
          // health now so this very response reflects it.
          store_degraded_.store(
              store_->Stats().health == core::HealthStatus::kDegraded,
              std::memory_order_relaxed);
          if (store_degraded_.load(std::memory_order_relaxed)) {
            tc.degraded_write_rejects.fetch_add(1, std::memory_order_relaxed);
            tenant->rejected.fetch_add(1, std::memory_order_relaxed);
            EmitError(c, h.request_id, h.tenant_id, StatusCode::kUnavailable,
                      "shard degraded; writes unavailable",
                      options_.retry_after_millis);
            break;
          }
        }
        t->payload_scratch.clear();
        t->payload_scratch.push_back(
            static_cast<char>(EncodeStatusCode(s.code())));
        AppendFrame(&c->out, kOpDelete | kResponseBit, h.request_id,
                    h.tenant_id, t->payload_scratch);
        tc.frames_out.fetch_add(1, std::memory_order_relaxed);
        tenant->write_keys.fetch_add(1, std::memory_order_relaxed);
        tenant->bytes_out.fetch_add(kHeaderSize + t->payload_scratch.size(),
                                    std::memory_order_relaxed);
        break;
      }
      case kOpStats: {
        flush_runs();
        const std::string text = StatsText();
        AppendFrame(&c->out, kOpStats | kResponseBit, h.request_id,
                    h.tenant_id, text);
        tc.frames_out.fetch_add(1, std::memory_order_relaxed);
        tenant->bytes_out.fetch_add(kHeaderSize + text.size(),
                                    std::memory_order_relaxed);
        break;
      }
      case kOpHealth: {
        flush_runs();
        EmitHealth(t, c, h.request_id, h.tenant_id);
        break;
      }
      default: {
        flush_runs();
        tc.protocol_errors.fetch_add(1, std::memory_order_relaxed);
        tenant->errors.fetch_add(1, std::memory_order_relaxed);
        EmitError(c, h.request_id, h.tenant_id, StatusCode::kNotSupported,
                  "unknown opcode");
        break;
      }
    }
  }
  flush_runs();
  if (frames > 0) tc.windows.fetch_add(1, std::memory_order_relaxed);

  // Reclaim consumed input. Keeping a bounded prefix avoids memmoving the
  // tail on every pass when a frame straddles reads. stream_base tracks
  // the bytes dropped so shed_boundary keeps meaning the same stream
  // position across compactions.
  if (c->in_consumed == c->in.size()) {
    c->stream_base += c->in.size();
    c->in.clear();
    c->in_consumed = 0;
    c->shed_boundary = kNoShed;  // backlog fully drained; stop shedding
  } else if (c->in_consumed >= kReadChunk) {
    c->stream_base += c->in_consumed;
    c->in.erase(0, c->in_consumed);
    c->in_consumed = 0;
  }
  return !fatal;
}

void Server::ExecuteReadRun(IoThread* t, Conn* c) {
  if (t->read_segs.empty()) {
    t->read_used = 0;
    return;
  }
  ThreadCounters& tc = *thread_counters_[t->index];

  // Deadlines are rechecked at execution time: a store stall earlier in
  // this window may have burned the budget since staging. Expired segments
  // are compacted out of the key span (swap keeps slot buffers alive) so
  // the store never sees their keys. Deadline-free windows skip all of it.
  bool any_deadline = false;
  for (const auto& seg : t->read_segs) {
    any_deadline = any_deadline || seg.expire_micros != 0;
  }
  size_t live = t->read_used;
  if (any_deadline) {
    const uint64_t now_us = NowMicros();
    size_t w = 0;
    for (auto& seg : t->read_segs) {
      if (seg.expire_micros != 0 && now_us > seg.expire_micros) {
        seg.expired = true;
        continue;
      }
      const size_t new_start = w;
      for (size_t i = seg.start; i < seg.start + seg.count; ++i, ++w) {
        if (w != i) std::swap(t->read_keys[w], t->read_keys[i]);
      }
      seg.start = new_start;
    }
    live = w;
  }
  if (live > 0) {
    core::ReadOptions ro;
    ro.max_value_bytes = options_.max_value_bytes;
    std::span<const std::string> keys(t->read_keys.data(), live);
    (void)store_->MultiGet(keys, ro, &t->read_result);
    tc.read_runs.fetch_add(1, std::memory_order_relaxed);
  }

  for (const auto& seg : t->read_segs) {
    if (seg.expired) {
      tc.deadline_expired.fetch_add(1, std::memory_order_relaxed);
      TenantFor(c, seg.tenant_id)
          ->errors.fetch_add(1, std::memory_order_relaxed);
      EmitError(c, seg.request_id, seg.tenant_id,
                StatusCode::kDeadlineExceeded,
                "deadline expired before read run");
      continue;
    }
    std::string& p = t->payload_scratch;
    p.clear();
    if (seg.op == kOpGet) {
      const Status& s = t->read_result.statuses[seg.start];
      p.push_back(static_cast<char>(EncodeStatusCode(s.code())));
      if (s.ok()) p.append(t->read_result.values[seg.start]);
    } else {
      PutFixed32(&p, static_cast<uint32_t>(seg.count));
      for (size_t i = 0; i < seg.count; ++i) {
        const Status& s = t->read_result.statuses[seg.start + i];
        p.push_back(static_cast<char>(EncodeStatusCode(s.code())));
        if (s.ok()) {
          AppendLengthPrefixed(&p, t->read_result.values[seg.start + i]);
        } else {
          PutFixed32(&p, 0);
        }
      }
    }
    AppendFrame(&c->out, seg.op | kResponseBit, seg.request_id, seg.tenant_id,
                p);
    tc.frames_out.fetch_add(1, std::memory_order_relaxed);
    TenantFor(c, seg.tenant_id)
        ->bytes_out.fetch_add(kHeaderSize + p.size(),
                              std::memory_order_relaxed);
  }
  t->read_used = 0;
  t->read_segs.clear();
}

void Server::ExecuteWriteRun(IoThread* t, Conn* c) {
  if (t->write_segs.empty()) {
    t->write_used = 0;
    return;
  }
  ThreadCounters& tc = *thread_counters_[t->index];

  // Same execution-time deadline recheck as the read run.
  bool any_deadline = false;
  for (const auto& seg : t->write_segs) {
    any_deadline = any_deadline || seg.expire_micros != 0;
  }
  size_t live = t->write_used;
  if (any_deadline) {
    const uint64_t now_us = NowMicros();
    size_t w = 0;
    for (auto& seg : t->write_segs) {
      if (seg.expire_micros != 0 && now_us > seg.expire_micros) {
        seg.expired = true;
        continue;
      }
      const size_t new_start = w;
      for (size_t i = seg.start; i < seg.start + seg.count; ++i, ++w) {
        if (w != i) std::swap(t->write_entries[w], t->write_entries[i]);
      }
      seg.start = new_start;
    }
    live = w;
  }
  bool any_io_error = false;
  if (live > 0) {
    std::span<const core::KvEntry> entries(t->write_entries.data(), live);
    (void)store_->WriteBatch(entries, core::WriteOptions(), &t->write_result);
    tc.write_runs.fetch_add(1, std::memory_order_relaxed);
    for (size_t i = 0; i < live; ++i) {
      any_io_error = any_io_error || t->write_result.statuses[i].IsIoError();
    }
  }
  if (any_io_error) {
    // The store may have just crossed into degraded; re-read health now so
    // these responses (and every later write) reflect it deterministically
    // instead of waiting out the stats-poll interval.
    store_degraded_.store(
        store_->Stats().health == core::HealthStatus::kDegraded,
        std::memory_order_relaxed);
  }
  const bool degraded = store_degraded_.load(std::memory_order_relaxed);

  for (const auto& seg : t->write_segs) {
    if (seg.expired) {
      tc.deadline_expired.fetch_add(1, std::memory_order_relaxed);
      TenantFor(c, seg.tenant_id)
          ->errors.fetch_add(1, std::memory_order_relaxed);
      EmitError(c, seg.request_id, seg.tenant_id,
                StatusCode::kDeadlineExceeded,
                "deadline expired before write run");
      continue;
    }
    std::string& p = t->payload_scratch;
    p.clear();
    if (seg.op == kOpPut) {
      const Status& s = t->write_result.statuses[seg.start];
      if (degraded && s.IsIoError()) {
        // Degradation contract: the store stays read-only and keeps
        // serving GETs; writes bounce as retryable kUnavailable with a
        // backoff hint rather than surfacing the shard's IoError.
        tc.degraded_write_rejects.fetch_add(1, std::memory_order_relaxed);
        TenantFor(c, seg.tenant_id)
            ->rejected.fetch_add(1, std::memory_order_relaxed);
        EmitError(c, seg.request_id, seg.tenant_id, StatusCode::kUnavailable,
                  "shard degraded; writes unavailable",
                  options_.retry_after_millis);
        continue;
      }
      p.push_back(static_cast<char>(EncodeStatusCode(s.code())));
    } else {
      PutFixed32(&p, static_cast<uint32_t>(seg.count));
      bool seg_rejected = false;
      for (size_t i = 0; i < seg.count; ++i) {
        const Status& s = t->write_result.statuses[seg.start + i];
        StatusCode code = s.code();
        if (degraded && s.IsIoError()) {
          code = StatusCode::kUnavailable;
          seg_rejected = true;
        }
        p.push_back(static_cast<char>(EncodeStatusCode(code)));
      }
      if (seg_rejected) {
        tc.degraded_write_rejects.fetch_add(1, std::memory_order_relaxed);
        TenantFor(c, seg.tenant_id)
            ->rejected.fetch_add(1, std::memory_order_relaxed);
      }
    }
    AppendFrame(&c->out, seg.op | kResponseBit, seg.request_id, seg.tenant_id,
                p);
    tc.frames_out.fetch_add(1, std::memory_order_relaxed);
    TenantFor(c, seg.tenant_id)
        ->bytes_out.fetch_add(kHeaderSize + p.size(),
                              std::memory_order_relaxed);
  }
  t->write_used = 0;
  t->write_segs.clear();
}

TenantCounters* Server::TenantFor(Conn* c, uint32_t tenant_id) {
  if (!c->tenant_valid || c->tenant_id != tenant_id) {
    c->tenant = tenants_.Get(tenant_id);
    c->tenant_id = tenant_id;
    c->tenant_valid = true;
  }
  return c->tenant;
}

void Server::EmitError(Conn* c, uint32_t request_id, uint32_t tenant_id,
                       StatusCode code, std::string_view message,
                       uint32_t retry_after_millis) {
  std::string p;
  p.push_back(static_cast<char>(EncodeStatusCode(code)));
  PutFixed32(&p, retry_after_millis);
  p.append(message);
  AppendFrame(&c->out, kOpError | kResponseBit, request_id, tenant_id, p);
  thread_counters_[c->owner->index]->frames_out.fetch_add(
      1, std::memory_order_relaxed);
}

void Server::EmitHealth(IoThread* t, Conn* c, uint32_t request_id,
                        uint32_t tenant_id) {
  // HEALTH reads live per-shard health (not the cached poll) so a client
  // probing after a fault sees the truth immediately; the cached flag is
  // refreshed as a side effect.
  const std::vector<core::HealthStatus> shards = store_->PerShardHealth();
  bool degraded = false;
  for (core::HealthStatus h : shards) {
    degraded = degraded || h == core::HealthStatus::kDegraded;
  }
  store_degraded_.store(degraded, std::memory_order_relaxed);

  std::string& p = t->payload_scratch;
  p.clear();
  p.push_back(degraded ? 1 : 0);
  PutFixed32(&p, degraded ? options_.retry_after_millis : 0);
  PutFixed32(&p, static_cast<uint32_t>(shards.size()));
  for (core::HealthStatus h : shards) {
    p.push_back(h == core::HealthStatus::kDegraded ? 1 : 0);
  }
  const ServerCounters agg = counters();
  PutFixed64(&p, agg.shed_frames);
  PutFixed64(&p, agg.deadline_expired);
  PutFixed64(&p, agg.watchdog_kills);
  PutFixed64(&p, agg.degraded_write_rejects);
  AppendFrame(&c->out, kOpHealth | kResponseBit, request_id, tenant_id, p);
  ThreadCounters& tc = *thread_counters_[t->index];
  tc.frames_out.fetch_add(1, std::memory_order_relaxed);
  TenantFor(c, tenant_id)
      ->bytes_out.fetch_add(kHeaderSize + p.size(), std::memory_order_relaxed);
}

bool Server::FlushOutput(IoThread* t, Conn* c) {
  bool progressed = false;
  while (c->out_sent < c->out.size()) {
    // MSG_NOSIGNAL: a peer that closed its read side must surface as EPIPE,
    // not kill the process with SIGPIPE.
    ssize_t w =
        c->channel != nullptr
            ? c->channel->Send(c->fd, c->out.data() + c->out_sent,
                               c->out.size() - c->out_sent, MSG_NOSIGNAL)
            : send(c->fd, c->out.data() + c->out_sent,
                   c->out.size() - c->out_sent, MSG_NOSIGNAL);
    if (w > 0) {
      c->out_sent += static_cast<size_t>(w);
      progressed = true;
      thread_counters_[t->index]->bytes_out.fetch_add(
          static_cast<uint64_t>(w), std::memory_order_relaxed);
      continue;
    }
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (w < 0 && errno == EINTR) continue;
    return false;
  }
  // Watchdog bookkeeping: blocked_since is the time of the last write
  // progress while output remains unsent (0 = not blocked). A connection
  // that never drains — the slowloris shape — keeps one timestamp and
  // ages out; one that trickles keeps resetting and survives.
  if (c->unsent() == 0) {
    c->blocked_since = 0;
  } else if (progressed || c->blocked_since == 0) {
    c->blocked_since = clock_->NowSeconds();
  }
  if (c->out_sent == c->out.size()) {
    c->out.clear();
    c->out_sent = 0;
  } else if (c->out_sent >= kReadChunk) {
    c->out.erase(0, c->out_sent);
    c->out_sent = 0;
  }
  return true;
}

void Server::UpdateInterest(IoThread* t, Conn* c) {
  uint32_t want = 0;
  // Backpressure: a client that won't read its responses stops being read
  // from, so its pipelined window can't grow the output buffer unboundedly.
  if (!c->close_after_flush && c->unsent() < options_.output_buffer_soft_limit)
    want |= EPOLLIN;
  if (c->unsent() > 0) want |= EPOLLOUT;
  if (want == c->interest) return;
  c->interest = want;
  epoll_event ev{};
  ev.events = want;
  ev.data.ptr = c;
  epoll_ctl(t->epoll_fd, EPOLL_CTL_MOD, c->fd, &ev);
}

void Server::CloseConn(IoThread* t, Conn* c) {
  epoll_ctl(t->epoll_fd, EPOLL_CTL_DEL, c->fd, nullptr);
  close(c->fd);
  thread_counters_[t->index]->connections_closed.fetch_add(
      1, std::memory_order_relaxed);
  t->conns.erase(c->fd);  // frees c
}

void Server::MaybePollStoreStats() {
  const double now = clock_->NowSeconds();
  {
    MutexLock lock(&stats_poll_mu_);
    if (now - last_stats_poll_ < options_.stats_poll_seconds) return;
    last_stats_poll_ = now;
  }
  const core::KvStoreStats st = store_->Stats();
  admission_.ObserveStoreStats(st);
  store_degraded_.store(st.health == core::HealthStatus::kDegraded,
                        std::memory_order_relaxed);
}

ServerCounters Server::counters() const {
  ServerCounters out;
  for (const auto& tc : thread_counters_) {
    out.connections_accepted +=
        tc->connections_accepted.load(std::memory_order_relaxed);
    out.connections_closed +=
        tc->connections_closed.load(std::memory_order_relaxed);
    out.frames_in += tc->frames_in.load(std::memory_order_relaxed);
    out.frames_out += tc->frames_out.load(std::memory_order_relaxed);
    out.protocol_errors += tc->protocol_errors.load(std::memory_order_relaxed);
    out.bytes_in += tc->bytes_in.load(std::memory_order_relaxed);
    out.bytes_out += tc->bytes_out.load(std::memory_order_relaxed);
    out.windows += tc->windows.load(std::memory_order_relaxed);
    out.read_runs += tc->read_runs.load(std::memory_order_relaxed);
    out.write_runs += tc->write_runs.load(std::memory_order_relaxed);
    out.shed_frames += tc->shed_frames.load(std::memory_order_relaxed);
    out.deadline_expired +=
        tc->deadline_expired.load(std::memory_order_relaxed);
    out.watchdog_kills += tc->watchdog_kills.load(std::memory_order_relaxed);
    out.degraded_write_rejects +=
        tc->degraded_write_rejects.load(std::memory_order_relaxed);
  }
  return out;
}

std::string Server::StatsText() const {
  std::string s;
  auto add = [&s](std::string_view key, uint64_t v) {
    s.append(key);
    s.push_back('=');
    s.append(std::to_string(v));
    s.push_back('\n');
  };
  const ServerCounters c = counters();
  add("server.connections_accepted", c.connections_accepted);
  add("server.connections_closed", c.connections_closed);
  add("server.frames_in", c.frames_in);
  add("server.frames_out", c.frames_out);
  add("server.protocol_errors", c.protocol_errors);
  add("server.bytes_in", c.bytes_in);
  add("server.bytes_out", c.bytes_out);
  add("server.windows", c.windows);
  add("server.read_runs", c.read_runs);
  add("server.write_runs", c.write_runs);
  add("server.shed_frames", c.shed_frames);
  add("server.deadline_expired", c.deadline_expired);
  add("server.watchdog_kills", c.watchdog_kills);
  add("server.degraded_write_rejects", c.degraded_write_rejects);
  add("admission.pushback_windows", admission_.pushback_windows());
  add("admission.rejected", admission_.rejected());

  const core::KvStoreStats st = store_->Stats();
  add("store.health_degraded", st.health == core::HealthStatus::kDegraded);
  add("store.reads", st.reads);
  add("store.writes", st.writes);
  add("store.hits", st.hits);
  add("store.misses", st.misses);
  add("store.multiget_batches", st.multiget_batches);
  add("store.multiget_keys", st.multiget_keys);
  add("store.multiget_shard_groups", st.multiget_shard_groups);
  add("store.writebatch_batches", st.writebatch_batches);
  add("store.writebatch_entries", st.writebatch_entries);
  add("store.writebatch_shard_groups", st.writebatch_shard_groups);
  add("store.log_append_groups", st.log_append_groups);
  add("store.write_stalls", st.write_stalls);
  add("store.stall_micros_total", st.stall_micros_total);

  for (const TenantSnapshot& ts : tenants_.Snapshot()) {
    const std::string prefix = "tenant." + std::to_string(ts.tenant_id);
    add(prefix + ".requests", ts.requests);
    add(prefix + ".read_keys", ts.read_keys);
    add(prefix + ".write_keys", ts.write_keys);
    add(prefix + ".rejected", ts.rejected);
    add(prefix + ".errors", ts.errors);
    add(prefix + ".bytes_in", ts.bytes_in);
    add(prefix + ".bytes_out", ts.bytes_out);
  }
  return s;
}

}  // namespace costperf::server
