#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <span>
#include <unordered_map>

#include "common/coding.h"

namespace costperf::server {

namespace {
// epoll_event.data.u64 tags for the two non-connection fds. Conn pointers
// are heap-allocated and aligned, so they can never collide with 0 or 1.
constexpr uint64_t kListenerTag = 0;
constexpr uint64_t kWakeTag = 1;

constexpr size_t kReadChunk = 64 * 1024;
// Upper bound on keys/entries one frame may carry; 8 bytes is the minimum
// wire cost per element, so this also follows from kMaxPayloadLen, but an
// explicit cap keeps the arithmetic obvious.
constexpr uint32_t kMaxBatchElements = 1u << 20;
}  // namespace

// Per-connection state. A connection lives on exactly one I/O thread, so
// none of this needs synchronization.
struct Server::Conn {
  int fd = -1;
  IoThread* owner = nullptr;
  uint32_t interest = 0;  // epoll events currently registered
  bool close_after_flush = false;

  std::string in;          // [in_consumed, in.size()) not yet parsed
  size_t in_consumed = 0;
  std::string out;         // [out_sent, out.size()) not yet written
  size_t out_sent = 0;

  // Cached tenant-counters pointer; refreshed when tenant_id changes so
  // the registry mutex is off the per-frame path.
  uint32_t tenant_id = 0;
  TenantCounters* tenant = nullptr;
  bool tenant_valid = false;

  size_t unsent() const { return out.size() - out_sent; }
};

// Per-thread event loop state plus reusable window-batching scratch. The
// scratch vectors only ever grow, so steady-state window processing does
// not allocate.
struct Server::IoThread {
  size_t index = 0;
  Server* server = nullptr;
  int epoll_fd = -1;
  int wake_fd = -1;
  std::thread thread;
  std::unordered_map<int, std::unique_ptr<Conn>> conns;

  Mutex pending_mu;
  std::vector<int> pending GUARDED_BY(pending_mu);

  // Which run is open: adjacent reads (GET/MULTIGET) coalesce into one
  // MultiGet; adjacent writes (PUT/WRITEBATCH) into one WriteBatch. Only
  // one run is open at a time, so emitting in run order preserves the
  // request order responses must follow.
  enum class Run { kNone, kRead, kWrite };
  Run open_run = Run::kNone;

  struct ReadSeg {
    uint8_t op;
    uint32_t request_id;
    uint32_t tenant_id;
    size_t start;
    size_t count;
  };
  std::vector<std::string> read_keys;  // slots reused across windows
  size_t read_used = 0;
  std::vector<ReadSeg> read_segs;
  core::BatchReadResult read_result;

  struct WriteSeg {
    uint8_t op;
    uint32_t request_id;
    uint32_t tenant_id;
    size_t start;
    size_t count;
  };
  std::vector<core::KvEntry> write_entries;  // slots reused across windows
  size_t write_used = 0;
  std::vector<WriteSeg> write_segs;
  core::BatchWriteResult write_result;

  std::string payload_scratch;

  std::string* NextReadKey() {
    if (read_keys.size() <= read_used) read_keys.emplace_back();
    return &read_keys[read_used++];
  }
  core::KvEntry* NextWriteEntry() {
    if (write_entries.size() <= write_used) write_entries.emplace_back();
    return &write_entries[write_used++];
  }
};

Server::Server(core::KvStore* store, ServerOptions options, Clock* clock)
    : store_(store),
      options_(std::move(options)),
      clock_(clock != nullptr ? clock : &default_clock_),
      tenants_(options_.max_tracked_tenants),
      admission_(clock_, options_.admission) {}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("server already started");
  }
  if (options_.io_threads < 1) {
    return Status::InvalidArgument("io_threads must be >= 1");
  }
  if (options_.io_threads > 1 && !store_->ConcurrentSafe()) {
    return Status::InvalidArgument(
        "store is not ConcurrentSafe; use io_threads=1 or a sharded store");
  }

  listen_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (listen_fd_ < 0) return Status::IoError("socket: " + std::string(strerror(errno)));
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad host: " + options_.host);
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status s = Status::IoError("bind: " + std::string(strerror(errno)));
    close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  if (listen(listen_fd_, 512) != 0) {
    Status s = Status::IoError("listen: " + std::string(strerror(errno)));
    close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  sockaddr_in bound{};
  socklen_t blen = sizeof(bound);
  getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &blen);
  port_ = ntohs(bound.sin_port);

  stopping_.store(false, std::memory_order_release);
  io_threads_.clear();
  thread_counters_.clear();
  for (int i = 0; i < options_.io_threads; ++i) {
    auto t = std::make_unique<IoThread>();
    t->index = static_cast<size_t>(i);
    t->server = this;
    t->epoll_fd = epoll_create1(0);
    t->wake_fd = eventfd(0, EFD_NONBLOCK);
    if (t->epoll_fd < 0 || t->wake_fd < 0) {
      Stop();
      return Status::IoError("epoll/eventfd setup failed");
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kWakeTag;
    epoll_ctl(t->epoll_fd, EPOLL_CTL_ADD, t->wake_fd, &ev);
    if (i == 0) {
      epoll_event lev{};
      lev.events = EPOLLIN;
      lev.data.u64 = kListenerTag;
      epoll_ctl(t->epoll_fd, EPOLL_CTL_ADD, listen_fd_, &lev);
    }
    thread_counters_.push_back(std::make_unique<ThreadCounters>());
    io_threads_.push_back(std::move(t));
  }
  running_.store(true, std::memory_order_release);
  for (auto& t : io_threads_) {
    IoThread* raw = t.get();
    raw->thread = std::thread([this, raw] { IoLoop(raw); });
  }
  return Status::Ok();
}

void Server::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    // Never started (or already stopped): still tear down half-built state.
    for (auto& t : io_threads_) {
      if (t->thread.joinable()) t->thread.join();
      if (t->wake_fd >= 0) close(t->wake_fd);
      if (t->epoll_fd >= 0) close(t->epoll_fd);
    }
    io_threads_.clear();
    if (listen_fd_ >= 0) {
      close(listen_fd_);
      listen_fd_ = -1;
    }
    return;
  }
  stopping_.store(true, std::memory_order_release);
  for (auto& t : io_threads_) {
    uint64_t one = 1;
    ssize_t ignored = write(t->wake_fd, &one, sizeof(one));
    (void)ignored;
  }
  for (auto& t : io_threads_) {
    if (t->thread.joinable()) t->thread.join();
  }
  for (auto& t : io_threads_) {
    // A woken IoLoop exits without adopting handoffs, so fds accepted on
    // thread 0 but not yet adopted here would otherwise leak past Stop.
    // All threads are joined by now, so nobody pushes concurrently.
    std::vector<int> orphaned;
    {
      MutexLock lock(&t->pending_mu);
      orphaned.swap(t->pending);
    }
    for (int fd : orphaned) {
      close(fd);
      thread_counters_[t->index]->connections_closed.fetch_add(
          1, std::memory_order_relaxed);
    }
    if (t->wake_fd >= 0) close(t->wake_fd);
    if (t->epoll_fd >= 0) close(t->epoll_fd);
  }
  io_threads_.clear();
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
}

void Server::IoLoop(IoThread* t) {
  epoll_event events[128];
  while (!stopping_.load(std::memory_order_acquire)) {
    int n = epoll_wait(t->epoll_fd, events, 128, 100);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      if (events[i].data.u64 == kListenerTag) {
        AcceptReady(t);
        continue;
      }
      if (events[i].data.u64 == kWakeTag) {
        uint64_t drain;
        ssize_t ignored = read(t->wake_fd, &drain, sizeof(drain));
        (void)ignored;
        AdoptPending(t);
        continue;
      }
      HandleConnEvent(t, static_cast<Conn*>(events[i].data.ptr),
                      events[i].events);
    }
    MaybePollStoreStats();
  }
  // Graceful-ish teardown: one best-effort flush per connection, then
  // close everything this thread owns.
  for (auto& [fd, conn] : t->conns) {
    (void)FlushOutput(t, conn.get());
    close(conn->fd);
    thread_counters_[t->index]->connections_closed.fetch_add(
        1, std::memory_order_relaxed);
  }
  t->conns.clear();
}

void Server::AcceptReady(IoThread* t) {
  while (true) {
    int fd = accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;
    }
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    thread_counters_[t->index]->connections_accepted.fetch_add(
        1, std::memory_order_relaxed);
    size_t target = next_thread_.fetch_add(1, std::memory_order_relaxed) %
                    io_threads_.size();
    IoThread* dst = io_threads_[target].get();
    if (dst == t) {
      auto conn = std::make_unique<Conn>();
      conn->fd = fd;
      conn->owner = t;
      conn->interest = EPOLLIN;
      epoll_event ev{};
      ev.events = conn->interest;
      ev.data.ptr = conn.get();
      epoll_ctl(t->epoll_fd, EPOLL_CTL_ADD, fd, &ev);
      t->conns.emplace(fd, std::move(conn));
    } else {
      {
        MutexLock lock(&dst->pending_mu);
        dst->pending.push_back(fd);
      }
      uint64_t wake = 1;
      ssize_t ignored = write(dst->wake_fd, &wake, sizeof(wake));
      (void)ignored;
    }
  }
}

void Server::AdoptPending(IoThread* t) {
  std::vector<int> fds;
  {
    MutexLock lock(&t->pending_mu);
    fds.swap(t->pending);
  }
  for (int fd : fds) {
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    conn->owner = t;
    conn->interest = EPOLLIN;
    epoll_event ev{};
    ev.events = conn->interest;
    ev.data.ptr = conn.get();
    epoll_ctl(t->epoll_fd, EPOLL_CTL_ADD, fd, &ev);
    t->conns.emplace(fd, std::move(conn));
  }
}

void Server::HandleConnEvent(IoThread* t, Conn* c, uint32_t events) {
  if (events & (EPOLLHUP | EPOLLERR)) {
    CloseConn(t, c);
    return;
  }
  if (events & EPOLLOUT) {
    if (!FlushOutput(t, c)) {
      CloseConn(t, c);
      return;
    }
    if (c->close_after_flush && c->unsent() == 0) {
      CloseConn(t, c);
      return;
    }
    // Draining output may unblock frames parked behind backpressure;
    // DrainAndProcess reads EAGAIN immediately and resumes them.
    if (!c->close_after_flush && !DrainAndProcess(t, c)) {
      CloseConn(t, c);
      return;
    }
  }
  if (events & EPOLLIN) {
    if (!DrainAndProcess(t, c)) {
      CloseConn(t, c);
      return;
    }
  }
  UpdateInterest(t, c);
}

bool Server::DrainAndProcess(IoThread* t, Conn* c) {
  bool peer_closed = false;
  while (true) {
    size_t old_size = c->in.size();
    c->in.resize(old_size + kReadChunk);
    ssize_t r = read(c->fd, c->in.data() + old_size, kReadChunk);
    if (r > 0) {
      c->in.resize(old_size + static_cast<size_t>(r));
      thread_counters_[t->index]->bytes_in.fetch_add(
          static_cast<uint64_t>(r), std::memory_order_relaxed);
      if (static_cast<size_t>(r) < kReadChunk) break;
      continue;
    }
    c->in.resize(old_size);
    if (r == 0) {
      peer_closed = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    return false;  // hard socket error
  }

  // Each ProcessFrames pass handles up to max_pipeline_frames; loop until
  // the buffered stream yields no further progress (need more bytes) or
  // output backpressure asks us to pause — EPOLLOUT resumes us then.
  while (true) {
    const size_t before = c->in.size() - c->in_consumed;
    if (!ProcessFrames(t, c)) {
      // Protocol violation: the error frame is queued; flush what we can
      // and only linger if the kernel couldn't take it all.
      (void)FlushOutput(t, c);
      return c->unsent() > 0;  // keep around solely to drain the error
    }
    if (!FlushOutput(t, c)) return false;
    if (c->in.size() - c->in_consumed == before) break;
    if (c->unsent() >= options_.output_buffer_soft_limit) break;
  }
  if (peer_closed) {
    // Peer half-closed after a clean request stream: answer what we can,
    // then finish.
    c->close_after_flush = true;
    return c->unsent() > 0;
  }
  return true;
}

bool Server::ProcessFrames(IoThread* t, Conn* c) {
  ThreadCounters& tc = *thread_counters_[t->index];
  t->open_run = IoThread::Run::kNone;
  t->read_used = 0;
  t->read_segs.clear();
  t->write_used = 0;
  t->write_segs.clear();

  auto flush_runs = [&] {
    if (t->open_run == IoThread::Run::kRead) ExecuteReadRun(t, c);
    if (t->open_run == IoThread::Run::kWrite) ExecuteWriteRun(t, c);
    t->open_run = IoThread::Run::kNone;
  };

  size_t frames = 0;
  bool fatal = false;
  while (frames < options_.max_pipeline_frames && !fatal) {
    const char* base = c->in.data() + c->in_consumed;
    const size_t avail = c->in.size() - c->in_consumed;
    FrameHeader h;
    DecodeResult dr = DecodeHeader(base, avail, &h);
    if (dr == DecodeResult::kNeedMore) break;
    if (dr != DecodeResult::kOk) {
      // The stream offset itself is untrustworthy; answer with a final
      // error frame and hang up.
      flush_runs();
      tc.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      EmitError(c, 0, 0, StatusCode::kInvalidArgument,
                std::string("unrecoverable frame: ") + DecodeResultName(dr));
      c->close_after_flush = true;
      fatal = true;
      break;
    }
    if (avail < kHeaderSize + h.payload_len) break;  // wait for payload
    std::string_view payload(base + kHeaderSize, h.payload_len);
    c->in_consumed += kHeaderSize + h.payload_len;
    ++frames;
    tc.frames_in.fetch_add(1, std::memory_order_relaxed);
    TenantCounters* tenant = TenantFor(c, h.tenant_id);
    tenant->requests.fetch_add(1, std::memory_order_relaxed);
    tenant->bytes_in.fetch_add(kHeaderSize + h.payload_len,
                               std::memory_order_relaxed);

    switch (h.opcode) {
      case kOpGet: {
        if (t->open_run == IoThread::Run::kWrite) flush_runs();
        t->open_run = IoThread::Run::kRead;
        const size_t start = t->read_used;
        t->NextReadKey()->assign(payload.data(), payload.size());
        t->read_segs.push_back({h.opcode, h.request_id, h.tenant_id, start, 1});
        tenant->read_keys.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      case kOpMultiGet: {
        std::string_view rest = payload;
        uint32_t count = 0;
        bool ok = GetU32(&rest, &count) && count <= kMaxBatchElements &&
                  static_cast<uint64_t>(count) * 4 <= rest.size();
        const size_t start = t->read_used;
        size_t got = 0;
        if (ok && t->open_run == IoThread::Run::kWrite) flush_runs();
        if (ok) t->open_run = IoThread::Run::kRead;
        for (uint32_t i = 0; ok && i < count; ++i) {
          std::string_view key;
          if (!GetLengthPrefixed(&rest, &key)) {
            ok = false;
            break;
          }
          t->NextReadKey()->assign(key.data(), key.size());
          ++got;
        }
        if (!ok) {
          // Unwind whatever this frame staged, report, keep the stream.
          // open_run may still be kWrite here (a count-check failure
          // happens before the run switch), and that run holds staged
          // writes flush_runs() must execute — only a read run this frame
          // emptied may be cancelled.
          t->read_used = start;
          if (t->open_run == IoThread::Run::kRead && t->read_used == 0 &&
              t->read_segs.empty()) {
            t->open_run = IoThread::Run::kNone;
          }
          flush_runs();
          tc.protocol_errors.fetch_add(1, std::memory_order_relaxed);
          tenant->errors.fetch_add(1, std::memory_order_relaxed);
          EmitError(c, h.request_id, h.tenant_id,
                    StatusCode::kInvalidArgument, "malformed MULTIGET payload");
          break;
        }
        t->read_segs.push_back(
            {h.opcode, h.request_id, h.tenant_id, start, got});
        tenant->read_keys.fetch_add(got, std::memory_order_relaxed);
        break;
      }
      case kOpPut:
      case kOpWriteBatch: {
        std::string_view rest = payload;
        uint32_t count = 1;
        bool ok = true;
        if (h.opcode == kOpWriteBatch) {
          ok = GetU32(&rest, &count) && count <= kMaxBatchElements &&
               static_cast<uint64_t>(count) * 8 <= rest.size();
        }
        if (ok && !admission_.AdmitWrite(h.tenant_id, count)) {
          flush_runs();
          tenant->rejected.fetch_add(1, std::memory_order_relaxed);
          EmitError(c, h.request_id, h.tenant_id,
                    StatusCode::kResourceExhausted,
                    "tenant over fair share during write pushback");
          break;
        }
        const size_t start = t->write_used;
        size_t got = 0;
        if (ok && t->open_run == IoThread::Run::kRead) flush_runs();
        if (ok) t->open_run = IoThread::Run::kWrite;
        for (uint32_t i = 0; ok && i < count; ++i) {
          std::string_view key, value;
          if (h.opcode == kOpPut) {
            // PUT: u32 klen, key, value = remainder.
            if (!GetLengthPrefixed(&rest, &key)) {
              ok = false;
              break;
            }
            value = rest;
            rest = {};
          } else if (!GetLengthPrefixed(&rest, &key) ||
                     !GetLengthPrefixed(&rest, &value)) {
            ok = false;
            break;
          }
          core::KvEntry* e = t->NextWriteEntry();
          e->first.assign(key.data(), key.size());
          e->second.assign(value.data(), value.size());
          ++got;
        }
        if (!ok) {
          // Mirror of the MULTIGET unwind: a still-open read run keeps its
          // staged GETs; only a write run this frame emptied is cancelled.
          t->write_used = start;
          if (t->open_run == IoThread::Run::kWrite && t->write_used == 0 &&
              t->write_segs.empty()) {
            t->open_run = IoThread::Run::kNone;
          }
          flush_runs();
          tc.protocol_errors.fetch_add(1, std::memory_order_relaxed);
          tenant->errors.fetch_add(1, std::memory_order_relaxed);
          EmitError(c, h.request_id, h.tenant_id,
                    StatusCode::kInvalidArgument, "malformed write payload");
          break;
        }
        t->write_segs.push_back(
            {h.opcode, h.request_id, h.tenant_id, start, got});
        tenant->write_keys.fetch_add(got, std::memory_order_relaxed);
        break;
      }
      case kOpDelete: {
        // Deletes are rare in the target workloads; they act as a run
        // barrier and execute inline. They still hit the write path (and
        // the log), so they go through admission like PUT/WRITEBATCH.
        flush_runs();
        if (!admission_.AdmitWrite(h.tenant_id, 1)) {
          tenant->rejected.fetch_add(1, std::memory_order_relaxed);
          EmitError(c, h.request_id, h.tenant_id,
                    StatusCode::kResourceExhausted,
                    "tenant over fair share during write pushback");
          break;
        }
        Status s = store_->Delete(Slice(payload.data(), payload.size()));
        t->payload_scratch.clear();
        t->payload_scratch.push_back(
            static_cast<char>(EncodeStatusCode(s.code())));
        AppendFrame(&c->out, kOpDelete | kResponseBit, h.request_id,
                    h.tenant_id, t->payload_scratch);
        tc.frames_out.fetch_add(1, std::memory_order_relaxed);
        tenant->write_keys.fetch_add(1, std::memory_order_relaxed);
        tenant->bytes_out.fetch_add(kHeaderSize + t->payload_scratch.size(),
                                    std::memory_order_relaxed);
        break;
      }
      case kOpStats: {
        flush_runs();
        const std::string text = StatsText();
        AppendFrame(&c->out, kOpStats | kResponseBit, h.request_id,
                    h.tenant_id, text);
        tc.frames_out.fetch_add(1, std::memory_order_relaxed);
        tenant->bytes_out.fetch_add(kHeaderSize + text.size(),
                                    std::memory_order_relaxed);
        break;
      }
      default: {
        flush_runs();
        tc.protocol_errors.fetch_add(1, std::memory_order_relaxed);
        tenant->errors.fetch_add(1, std::memory_order_relaxed);
        EmitError(c, h.request_id, h.tenant_id, StatusCode::kNotSupported,
                  "unknown opcode");
        break;
      }
    }
  }
  flush_runs();
  if (frames > 0) tc.windows.fetch_add(1, std::memory_order_relaxed);

  // Reclaim consumed input. Keeping a bounded prefix avoids memmoving the
  // tail on every pass when a frame straddles reads.
  if (c->in_consumed == c->in.size()) {
    c->in.clear();
    c->in_consumed = 0;
  } else if (c->in_consumed >= kReadChunk) {
    c->in.erase(0, c->in_consumed);
    c->in_consumed = 0;
  }
  return !fatal;
}

void Server::ExecuteReadRun(IoThread* t, Conn* c) {
  if (t->read_segs.empty()) {
    t->read_used = 0;
    return;
  }
  ThreadCounters& tc = *thread_counters_[t->index];
  core::ReadOptions ro;
  ro.max_value_bytes = options_.max_value_bytes;
  std::span<const std::string> keys(t->read_keys.data(), t->read_used);
  (void)store_->MultiGet(keys, ro, &t->read_result);
  tc.read_runs.fetch_add(1, std::memory_order_relaxed);

  for (const auto& seg : t->read_segs) {
    std::string& p = t->payload_scratch;
    p.clear();
    if (seg.op == kOpGet) {
      const Status& s = t->read_result.statuses[seg.start];
      p.push_back(static_cast<char>(EncodeStatusCode(s.code())));
      if (s.ok()) p.append(t->read_result.values[seg.start]);
    } else {
      PutFixed32(&p, static_cast<uint32_t>(seg.count));
      for (size_t i = 0; i < seg.count; ++i) {
        const Status& s = t->read_result.statuses[seg.start + i];
        p.push_back(static_cast<char>(EncodeStatusCode(s.code())));
        if (s.ok()) {
          AppendLengthPrefixed(&p, t->read_result.values[seg.start + i]);
        } else {
          PutFixed32(&p, 0);
        }
      }
    }
    AppendFrame(&c->out, seg.op | kResponseBit, seg.request_id, seg.tenant_id,
                p);
    tc.frames_out.fetch_add(1, std::memory_order_relaxed);
    TenantFor(c, seg.tenant_id)
        ->bytes_out.fetch_add(kHeaderSize + p.size(),
                              std::memory_order_relaxed);
  }
  t->read_used = 0;
  t->read_segs.clear();
}

void Server::ExecuteWriteRun(IoThread* t, Conn* c) {
  if (t->write_segs.empty()) {
    t->write_used = 0;
    return;
  }
  ThreadCounters& tc = *thread_counters_[t->index];
  std::span<const core::KvEntry> entries(t->write_entries.data(),
                                         t->write_used);
  (void)store_->WriteBatch(entries, core::WriteOptions(), &t->write_result);
  tc.write_runs.fetch_add(1, std::memory_order_relaxed);

  for (const auto& seg : t->write_segs) {
    std::string& p = t->payload_scratch;
    p.clear();
    if (seg.op == kOpPut) {
      const Status& s = t->write_result.statuses[seg.start];
      p.push_back(static_cast<char>(EncodeStatusCode(s.code())));
    } else {
      PutFixed32(&p, static_cast<uint32_t>(seg.count));
      for (size_t i = 0; i < seg.count; ++i) {
        p.push_back(static_cast<char>(
            EncodeStatusCode(t->write_result.statuses[seg.start + i].code())));
      }
    }
    AppendFrame(&c->out, seg.op | kResponseBit, seg.request_id, seg.tenant_id,
                p);
    tc.frames_out.fetch_add(1, std::memory_order_relaxed);
    TenantFor(c, seg.tenant_id)
        ->bytes_out.fetch_add(kHeaderSize + p.size(),
                              std::memory_order_relaxed);
  }
  t->write_used = 0;
  t->write_segs.clear();
}

TenantCounters* Server::TenantFor(Conn* c, uint32_t tenant_id) {
  if (!c->tenant_valid || c->tenant_id != tenant_id) {
    c->tenant = tenants_.Get(tenant_id);
    c->tenant_id = tenant_id;
    c->tenant_valid = true;
  }
  return c->tenant;
}

void Server::EmitError(Conn* c, uint32_t request_id, uint32_t tenant_id,
                       StatusCode code, std::string_view message) {
  std::string p;
  p.push_back(static_cast<char>(EncodeStatusCode(code)));
  p.append(message);
  AppendFrame(&c->out, kOpError | kResponseBit, request_id, tenant_id, p);
  thread_counters_[c->owner->index]->frames_out.fetch_add(
      1, std::memory_order_relaxed);
}

bool Server::FlushOutput(IoThread* t, Conn* c) {
  while (c->out_sent < c->out.size()) {
    // MSG_NOSIGNAL: a peer that closed its read side must surface as EPIPE,
    // not kill the process with SIGPIPE.
    ssize_t w = send(c->fd, c->out.data() + c->out_sent,
                     c->out.size() - c->out_sent, MSG_NOSIGNAL);
    if (w > 0) {
      c->out_sent += static_cast<size_t>(w);
      thread_counters_[t->index]->bytes_out.fetch_add(
          static_cast<uint64_t>(w), std::memory_order_relaxed);
      continue;
    }
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (w < 0 && errno == EINTR) continue;
    return false;
  }
  if (c->out_sent == c->out.size()) {
    c->out.clear();
    c->out_sent = 0;
  } else if (c->out_sent >= kReadChunk) {
    c->out.erase(0, c->out_sent);
    c->out_sent = 0;
  }
  return true;
}

void Server::UpdateInterest(IoThread* t, Conn* c) {
  uint32_t want = 0;
  // Backpressure: a client that won't read its responses stops being read
  // from, so its pipelined window can't grow the output buffer unboundedly.
  if (!c->close_after_flush && c->unsent() < options_.output_buffer_soft_limit)
    want |= EPOLLIN;
  if (c->unsent() > 0) want |= EPOLLOUT;
  if (want == c->interest) return;
  c->interest = want;
  epoll_event ev{};
  ev.events = want;
  ev.data.ptr = c;
  epoll_ctl(t->epoll_fd, EPOLL_CTL_MOD, c->fd, &ev);
}

void Server::CloseConn(IoThread* t, Conn* c) {
  epoll_ctl(t->epoll_fd, EPOLL_CTL_DEL, c->fd, nullptr);
  close(c->fd);
  thread_counters_[t->index]->connections_closed.fetch_add(
      1, std::memory_order_relaxed);
  t->conns.erase(c->fd);  // frees c
}

void Server::MaybePollStoreStats() {
  const double now = clock_->NowSeconds();
  {
    MutexLock lock(&stats_poll_mu_);
    if (now - last_stats_poll_ < options_.stats_poll_seconds) return;
    last_stats_poll_ = now;
  }
  admission_.ObserveStoreStats(store_->Stats());
}

ServerCounters Server::counters() const {
  ServerCounters out;
  for (const auto& tc : thread_counters_) {
    out.connections_accepted +=
        tc->connections_accepted.load(std::memory_order_relaxed);
    out.connections_closed +=
        tc->connections_closed.load(std::memory_order_relaxed);
    out.frames_in += tc->frames_in.load(std::memory_order_relaxed);
    out.frames_out += tc->frames_out.load(std::memory_order_relaxed);
    out.protocol_errors += tc->protocol_errors.load(std::memory_order_relaxed);
    out.bytes_in += tc->bytes_in.load(std::memory_order_relaxed);
    out.bytes_out += tc->bytes_out.load(std::memory_order_relaxed);
    out.windows += tc->windows.load(std::memory_order_relaxed);
    out.read_runs += tc->read_runs.load(std::memory_order_relaxed);
    out.write_runs += tc->write_runs.load(std::memory_order_relaxed);
  }
  return out;
}

std::string Server::StatsText() const {
  std::string s;
  auto add = [&s](std::string_view key, uint64_t v) {
    s.append(key);
    s.push_back('=');
    s.append(std::to_string(v));
    s.push_back('\n');
  };
  const ServerCounters c = counters();
  add("server.connections_accepted", c.connections_accepted);
  add("server.connections_closed", c.connections_closed);
  add("server.frames_in", c.frames_in);
  add("server.frames_out", c.frames_out);
  add("server.protocol_errors", c.protocol_errors);
  add("server.bytes_in", c.bytes_in);
  add("server.bytes_out", c.bytes_out);
  add("server.windows", c.windows);
  add("server.read_runs", c.read_runs);
  add("server.write_runs", c.write_runs);
  add("admission.pushback_windows", admission_.pushback_windows());
  add("admission.rejected", admission_.rejected());

  const core::KvStoreStats st = store_->Stats();
  add("store.reads", st.reads);
  add("store.writes", st.writes);
  add("store.hits", st.hits);
  add("store.misses", st.misses);
  add("store.multiget_batches", st.multiget_batches);
  add("store.multiget_keys", st.multiget_keys);
  add("store.multiget_shard_groups", st.multiget_shard_groups);
  add("store.writebatch_batches", st.writebatch_batches);
  add("store.writebatch_entries", st.writebatch_entries);
  add("store.writebatch_shard_groups", st.writebatch_shard_groups);
  add("store.log_append_groups", st.log_append_groups);
  add("store.write_stalls", st.write_stalls);
  add("store.stall_micros_total", st.stall_micros_total);

  for (const TenantSnapshot& ts : tenants_.Snapshot()) {
    const std::string prefix = "tenant." + std::to_string(ts.tenant_id);
    add(prefix + ".requests", ts.requests);
    add(prefix + ".read_keys", ts.read_keys);
    add(prefix + ".write_keys", ts.write_keys);
    add(prefix + ".rejected", ts.rejected);
    add(prefix + ".errors", ts.errors);
    add(prefix + ".bytes_in", ts.bytes_in);
    add(prefix + ".bytes_out", ts.bytes_out);
  }
  return s;
}

}  // namespace costperf::server
