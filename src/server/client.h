#ifndef COSTPERF_SERVER_CLIENT_H_
#define COSTPERF_SERVER_CLIENT_H_

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/batch.h"
#include "server/protocol.h"

namespace costperf::server {

// Blocking client for the wire protocol. One-shot helpers (Get/Put/...)
// round-trip a single frame; the Queue*/Flush/ReadResponse surface
// pipelines many frames per syscall, which is how the e2e tests prove the
// server coalesces a pipelined window into batched store calls. Not
// thread-safe; one instance per connection.
class SyncClient {
 public:
  SyncClient() = default;
  ~SyncClient();

  SyncClient(const SyncClient&) = delete;
  SyncClient& operator=(const SyncClient&) = delete;

  Status Connect(const std::string& host, uint16_t port);
  void Close();
  bool connected() const { return fd_ >= 0; }

  // Tenant id stamped on every subsequent frame.
  void set_tenant(uint32_t tenant_id) { tenant_id_ = tenant_id; }

  // A decoded response frame.
  struct Response {
    uint8_t opcode = 0;         // request opcode (response bit stripped)
    uint32_t request_id = 0;
    StatusCode code = StatusCode::kOk;  // top-level / first-error status
    std::string value;                  // GET payload
    std::vector<Status> statuses;       // MULTIGET / WRITEBATCH per element
    std::vector<std::string> values;    // MULTIGET per element
    std::string text;                   // STATS payload or error message
    bool is_error() const { return opcode == kOpError; }
  };

  // -- pipelined surface -----------------------------------------------
  // Queue* appends a frame to the send buffer and returns its request_id.
  uint32_t QueueGet(std::string_view key);
  uint32_t QueuePut(std::string_view key, std::string_view value);
  uint32_t QueueDelete(std::string_view key);
  uint32_t QueueMultiGet(std::span<const std::string> keys);
  uint32_t QueueWriteBatch(std::span<const core::KvEntry> entries);
  uint32_t QueueStats();
  Status Flush();  // write the send buffer to the socket
  // Blocks for the next response frame (in server order).
  Status ReadResponse(Response* out);

  // -- one-shot conveniences ---------------------------------------------
  Result<std::string> Get(std::string_view key);
  Status Put(std::string_view key, std::string_view value);
  Status Delete(std::string_view key);
  Status MultiGet(std::span<const std::string> keys,
                  core::BatchReadResult* out);
  Status WriteBatch(std::span<const core::KvEntry> entries,
                    core::BatchWriteResult* out);
  // STATS text, parsed into its `key=value` lines.
  Result<std::map<std::string, uint64_t>> StatsMap();

  // -- raw access for protocol tests -------------------------------------
  Status SendRaw(std::string_view bytes);
  // Blocks for one frame (however malformed the request that provoked it
  // was, responses are well-formed). Returns an error if the peer closes.
  Status ReadRawFrame(FrameHeader* header, std::string* payload);
  // True once the peer has closed the connection (detected by a read).
  Status ExpectPeerClose();

 private:
  Status FillTo(size_t bytes);  // grow inbuf_ to >= bytes, blocking

  int fd_ = -1;
  uint32_t tenant_id_ = 0;
  uint32_t next_request_id_ = 1;
  std::string outbuf_;
  std::string inbuf_;
  size_t in_consumed_ = 0;
};

}  // namespace costperf::server

#endif  // COSTPERF_SERVER_CLIENT_H_
