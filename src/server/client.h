#ifndef COSTPERF_SERVER_CLIENT_H_
#define COSTPERF_SERVER_CLIENT_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/retry.h"
#include "common/status.h"
#include "core/batch.h"
#include "core/kv_store.h"
#include "server/protocol.h"

namespace costperf::fault {
class NetFaultInjector;
class NetChannel;
}  // namespace costperf::fault

namespace costperf::server {

// Blocking client for the wire protocol. One-shot helpers (Get/Put/...)
// round-trip a single frame; the Queue*/Flush/ReadResponse surface
// pipelines many frames per syscall, which is how the e2e tests prove the
// server coalesces a pipelined window into batched store calls. Not
// thread-safe; one instance per connection.
class SyncClient {
 public:
  SyncClient();   // out of line: members name the fwd-declared NetChannel
  ~SyncClient();

  SyncClient(const SyncClient&) = delete;
  SyncClient& operator=(const SyncClient&) = delete;

  Status Connect(const std::string& host, uint16_t port);
  void Close();
  bool connected() const { return fd_ >= 0; }

  // Tenant id stamped on every subsequent frame.
  void set_tenant(uint32_t tenant_id) { tenant_id_ = tenant_id; }

  // Relative deadline stamped on every subsequent request frame; nonzero
  // deadlines emit protocol-v2 headers. 0 (the default) = no deadline,
  // plain v1 frames.
  void set_deadline_micros(uint64_t micros) { deadline_micros_ = micros; }

  // SO_RCVTIMEO on the socket: blocking reads that see no bytes for this
  // long fail with kDeadlineExceeded instead of hanging forever (the chaos
  // tests' wedge detector). 0 = block indefinitely. Applies to the current
  // connection immediately and to future Connect()s.
  void set_recv_timeout_millis(int millis);

  // Wraps this client's socket I/O in a scripted fault channel (client-side
  // injection). Takes effect at the next Connect(). Null disables.
  void set_net_fault(fault::NetFaultInjector* injector) {
    net_fault_ = injector;
  }

  // Enables bounded retry/backoff on the one-shot helpers: transport
  // failures reconnect and retry; kUnavailable / kResourceExhausted
  // responses back off by max(policy backoff, the server's retry_after
  // hint) and retry. The pipelined Queue*/Flush surface is never retried —
  // replaying half a pipeline is the caller's policy decision.
  void set_retry_policy(const RetryPolicy& policy) {
    retry_policy_ = policy;
    retry_enabled_ = true;
  }
  void clear_retry_policy() { retry_enabled_ = false; }
  uint64_t retries() const { return retries_; }
  uint64_t give_ups() const { return give_ups_; }

  // A decoded response frame.
  struct Response {
    uint8_t opcode = 0;         // request opcode (response bit stripped)
    uint32_t request_id = 0;
    StatusCode code = StatusCode::kOk;  // top-level / first-error status
    std::string value;                  // GET payload
    std::vector<Status> statuses;       // MULTIGET / WRITEBATCH per element
    std::vector<std::string> values;    // MULTIGET per element
    std::string text;                   // STATS payload or error message
    uint32_t retry_after_millis = 0;    // error-frame backoff hint
    bool is_error() const { return opcode == kOpError; }
  };

  // Decoded HEALTH response.
  struct HealthReport {
    bool degraded = false;
    uint32_t retry_after_millis = 0;
    std::vector<core::HealthStatus> shards;
    uint64_t shed_frames = 0;
    uint64_t deadline_expired = 0;
    uint64_t watchdog_kills = 0;
    uint64_t degraded_write_rejects = 0;
  };

  // -- pipelined surface -----------------------------------------------
  // Queue* appends a frame to the send buffer and returns its request_id.
  uint32_t QueueGet(std::string_view key);
  uint32_t QueuePut(std::string_view key, std::string_view value);
  uint32_t QueueDelete(std::string_view key);
  uint32_t QueueMultiGet(std::span<const std::string> keys);
  uint32_t QueueWriteBatch(std::span<const core::KvEntry> entries);
  uint32_t QueueStats();
  uint32_t QueueHealth();
  Status Flush();  // write the send buffer to the socket
  // Blocks for the next response frame (in server order).
  Status ReadResponse(Response* out);

  // -- one-shot conveniences ---------------------------------------------
  Result<std::string> Get(std::string_view key);
  Status Put(std::string_view key, std::string_view value);
  Status Delete(std::string_view key);
  Status MultiGet(std::span<const std::string> keys,
                  core::BatchReadResult* out);
  Status WriteBatch(std::span<const core::KvEntry> entries,
                    core::BatchWriteResult* out);
  // STATS text, parsed into its `key=value` lines.
  Result<std::map<std::string, uint64_t>> StatsMap();
  // HEALTH round-trip (never retried: health probes must see the truth).
  Status Health(HealthReport* out);

  // -- raw access for protocol tests -------------------------------------
  Status SendRaw(std::string_view bytes);
  // Blocks for one frame (however malformed the request that provoked it
  // was, responses are well-formed). Returns an error if the peer closes.
  Status ReadRawFrame(FrameHeader* header, std::string* payload);
  // True once the peer has closed the connection (detected by a read).
  Status ExpectPeerClose();

 private:
  Status FillTo(size_t bytes);  // grow inbuf_ to >= bytes, blocking
  // Runs queue+flush+read once, or under the retry policy when enabled.
  // `queue` stages the request frame; `read` consumes its response and
  // returns the final status. Reconnects between attempts on transport
  // failure; honors Response::retry_after_millis on retryable responses.
  Status OneShot(const std::function<void()>& queue, Response* r);
  void ApplyRecvTimeout();

  int fd_ = -1;
  uint32_t tenant_id_ = 0;
  uint64_t deadline_micros_ = 0;
  uint32_t next_request_id_ = 1;
  std::string outbuf_;
  std::string inbuf_;
  size_t in_consumed_ = 0;
  int recv_timeout_millis_ = 0;
  std::string host_;
  uint16_t port_ = 0;

  fault::NetFaultInjector* net_fault_ = nullptr;
  std::unique_ptr<fault::NetChannel> channel_;

  bool retry_enabled_ = false;
  RetryPolicy retry_policy_;
  uint64_t retry_salt_ = 0;   // decorrelates successive one-shot ops
  uint64_t retries_ = 0;      // attempts beyond the first, across ops
  uint64_t give_ups_ = 0;     // ops that exhausted the attempt budget
};

}  // namespace costperf::server

#endif  // COSTPERF_SERVER_CLIENT_H_
