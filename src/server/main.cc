// costperf_server: the networked front door. Serves a ShardedStore over
// the pipelined binary protocol (src/server/protocol.h) on loopback TCP.
//
//   costperf_server --port 0 --io-threads 2 --shards 8 --store memory
//
// Prints "listening on <host>:<port>" once ready (scripts parse this to
// discover a kernel-assigned port), then runs until SIGINT/SIGTERM.

#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <semaphore>
#include <string>

#include "core/caching_store.h"
#include "core/sharded_store.h"
#include "server/server.h"

namespace {

// Async-signal-safe shutdown latch: the handler only posts. SIGINT and
// SIGTERM are handled identically (graceful stop + final stats); a second
// signal while shutdown is in flight hard-exits, so a wedged drain can
// still be interrupted from the terminal.
std::binary_semaphore g_shutdown(0);
volatile sig_atomic_t g_signal_count = 0;

void HandleSignal(int) {
  if (++g_signal_count > 1) _exit(130);
  g_shutdown.release();
}

void Usage(const char* argv0) {
  fprintf(stderr,
          "usage: %s [--host H] [--port P] [--io-threads N] [--shards N]\n"
          "          [--store memory|caching] [--max-pipeline N]\n"
          "          [--max-value-bytes N] [--cache-budget-mb N]\n"
          "          [--write-stall-timeout SECS] [--shed-backlog-bytes N]\n"
          "          [--shed-age-micros N] [--retry-after-millis N]\n"
          "  --port 0 picks a free port (printed on stdout once bound)\n"
          "  --cache-budget-mb sets the per-shard DRAM budget for\n"
          "  --store caching (0 = unbounded)\n"
          "  --write-stall-timeout closes connections write-blocked this\n"
          "  long (0 disables); --shed-backlog-bytes / --shed-age-micros\n"
          "  bound per-connection queue depth / request age (0 disables)\n",
          argv0);
}

}  // namespace

int main(int argc, char** argv) {
  using costperf::core::CachingStoreOptions;
  using costperf::core::ShardedStore;

  costperf::server::ServerOptions options;
  size_t shards = 8;
  std::string store_kind = "memory";
  long cache_budget_mb = -1;  // -1 = keep the CachingStoreOptions default

  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        fprintf(stderr, "%s needs a value\n", flag);
        exit(2);
      }
      return argv[++i];
    };
    if (strcmp(argv[i], "--host") == 0) {
      options.host = next("--host");
    } else if (strcmp(argv[i], "--port") == 0) {
      options.port = static_cast<uint16_t>(atoi(next("--port")));
    } else if (strcmp(argv[i], "--io-threads") == 0) {
      options.io_threads = atoi(next("--io-threads"));
    } else if (strcmp(argv[i], "--shards") == 0) {
      shards = static_cast<size_t>(atoll(next("--shards")));
    } else if (strcmp(argv[i], "--store") == 0) {
      store_kind = next("--store");
    } else if (strcmp(argv[i], "--max-pipeline") == 0) {
      options.max_pipeline_frames = static_cast<size_t>(atoll(next("--max-pipeline")));
    } else if (strcmp(argv[i], "--max-value-bytes") == 0) {
      options.max_value_bytes = static_cast<size_t>(atoll(next("--max-value-bytes")));
    } else if (strcmp(argv[i], "--cache-budget-mb") == 0) {
      cache_budget_mb = atol(next("--cache-budget-mb"));
    } else if (strcmp(argv[i], "--write-stall-timeout") == 0) {
      options.write_stall_timeout_seconds = atof(next("--write-stall-timeout"));
    } else if (strcmp(argv[i], "--shed-backlog-bytes") == 0) {
      options.shed_backlog_bytes =
          static_cast<size_t>(atoll(next("--shed-backlog-bytes")));
    } else if (strcmp(argv[i], "--shed-age-micros") == 0) {
      options.shed_age_micros =
          static_cast<uint64_t>(atoll(next("--shed-age-micros")));
    } else if (strcmp(argv[i], "--retry-after-millis") == 0) {
      options.retry_after_millis =
          static_cast<uint32_t>(atoll(next("--retry-after-millis")));
    } else {
      Usage(argv[0]);
      return 2;
    }
  }

  std::unique_ptr<ShardedStore> store;
  if (store_kind == "memory") {
    store = ShardedStore::OfMemory(shards);
  } else if (store_kind == "caching") {
    CachingStoreOptions caching;
    if (cache_budget_mb >= 0) {
      caching.memory_budget_bytes =
          static_cast<uint64_t>(cache_budget_mb) << 20;
    }
    store = ShardedStore::OfCaching(shards, caching);
  } else {
    fprintf(stderr, "unknown --store %s\n", store_kind.c_str());
    return 2;
  }

  // Handlers go in before Start() so a signal in the bind/listen window is
  // never lost. sigaction without SA_RESTART: interrupted syscalls return
  // EINTR, which every blocking loop in the server and client handles.
  struct sigaction sa;
  memset(&sa, 0, sizeof(sa));
  sa.sa_handler = HandleSignal;
  sigemptyset(&sa.sa_mask);
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);

  costperf::server::Server server(store.get(), options);
  costperf::Status s = server.Start();
  if (!s.ok()) {
    fprintf(stderr, "start failed: %s\n", s.ToString().c_str());
    return 1;
  }
  printf("listening on %s:%u\n", options.host.c_str(), server.port());
  fflush(stdout);

  g_shutdown.acquire();

  server.Stop();
  const auto counters = server.counters();
  printf("served frames_in=%llu frames_out=%llu windows=%llu "
         "read_runs=%llu write_runs=%llu protocol_errors=%llu\n",
         (unsigned long long)counters.frames_in,
         (unsigned long long)counters.frames_out,
         (unsigned long long)counters.windows,
         (unsigned long long)counters.read_runs,
         (unsigned long long)counters.write_runs,
         (unsigned long long)counters.protocol_errors);
  printf("%s", server.StatsText().c_str());
  fflush(stdout);
  return 0;
}
