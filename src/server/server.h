#ifndef COSTPERF_SERVER_SERVER_H_
#define COSTPERF_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "core/batch.h"
#include "core/kv_store.h"
#include "server/admission.h"
#include "server/protocol.h"

namespace costperf::fault {
class NetFaultInjector;
}  // namespace costperf::fault

namespace costperf::server {

struct ServerOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  // 0 = kernel-assigned; read back via Server::port()
  int io_threads = 2;
  // Cap on frames decoded from one connection per event-loop pass; bounds
  // the latency one greedy pipelined connection can impose on its peers.
  size_t max_pipeline_frames = 1024;
  // Forwarded as ReadOptions::max_value_bytes so a response frame can
  // never exceed what the output buffer policy plans for.
  size_t max_value_bytes = 1u << 20;
  // Stop reading from a connection whose unsent output exceeds this;
  // resume when the client drains it (per-connection backpressure).
  size_t output_buffer_soft_limit = 8u << 20;
  // Admission pushback re-polls store stats at most this often.
  double stats_poll_seconds = 0.05;
  // Distinct tenant ids tracked in per-tenant stats; wire-supplied ids
  // past the cap fold into the kOverflowTenantId bucket so a client
  // spraying ids cannot grow the registry (or STATS output) unboundedly.
  size_t max_tracked_tenants = 1024;
  AdmissionOptions admission;

  // --- robustness / degradation knobs -------------------------------------
  // Slow-connection watchdog: a connection whose unsent output makes no
  // write progress for this long is closed (the slowloris hole the net
  // fault injector proves exists). <= 0 disables the watchdog.
  double write_stall_timeout_seconds = 5.0;
  // How often each I/O thread sweeps its connections for stalls.
  double watchdog_poll_seconds = 0.25;
  // Load shedding by queue depth: once a connection's unparsed input
  // backlog exceeds this many bytes, every frame that arrived past the
  // budget point is answered kUnavailable (+ retry_after) instead of being
  // staged, until the backlog fully drains. Bounds the work a client can
  // buy by blasting a pipelined firehose. 0 disables.
  size_t shed_backlog_bytes = 4u << 20;
  // Load shedding by age: a frame that sat buffered longer than this
  // before staging is shed the same way (its issuer has likely timed out).
  // 0 disables.
  uint64_t shed_age_micros = 0;
  // Hint stamped on kUnavailable / kResourceExhausted error frames so
  // clients back off instead of hammering a shedding or degraded server.
  uint32_t retry_after_millis = 50;
  // Optional scripted network fault injection (tests/chaos lane). When
  // null — the production configuration — reads and writes are the raw
  // syscalls; when set, each accepted connection is wrapped in a
  // NetChannel from this injector. Must outlive the server.
  fault::NetFaultInjector* net_fault = nullptr;
};

// Global wire/server counters (monotonic; snapshot via Server::counters()).
struct ServerCounters {
  uint64_t connections_accepted = 0;
  uint64_t connections_closed = 0;
  uint64_t frames_in = 0;
  uint64_t frames_out = 0;
  uint64_t protocol_errors = 0;  // frames refused before execution
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
  uint64_t windows = 0;          // event-loop passes that executed frames
  uint64_t read_runs = 0;        // MultiGet calls issued for read windows
  uint64_t write_runs = 0;       // WriteBatch calls issued for write windows
  uint64_t shed_frames = 0;      // frames answered kUnavailable by load shed
  uint64_t deadline_expired = 0; // frames answered kDeadlineExceeded
  uint64_t watchdog_kills = 0;   // connections closed for write stalls
  uint64_t degraded_write_rejects = 0;  // writes bounced off a degraded shard
};

// Epoll-based pipelined binary server over a KvStore.
//
// N I/O threads each run an epoll loop; connections are assigned round-
// robin at accept time and never migrate, so per-connection state is
// single-threaded by construction. Each pass drains a connection's socket,
// decodes every complete frame (the pipelined window), and coalesces
// adjacent reads into one KvStore::MultiGet and adjacent writes into one
// KvStore::WriteBatch — the wire pipeline rides the store's batched paths
// (per-shard grouping, group-committed log appends) instead of degrading
// into per-key calls. Responses are emitted in request order.
class Server {
 public:
  // `store` must be ConcurrentSafe() when io_threads > 1 and outlive the
  // server. `clock` defaults to the process RealClock.
  Server(core::KvStore* store, ServerOptions options, Clock* clock = nullptr);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds, listens, and starts the I/O threads.
  Status Start();
  // Graceful: stops accepting, wakes every I/O thread, flushes what can be
  // flushed without blocking, closes connections, joins threads. Safe to
  // call twice.
  void Stop();

  uint16_t port() const { return port_; }
  bool running() const { return running_.load(std::memory_order_acquire); }

  ServerCounters counters() const;
  TenantRegistry& tenants() { return tenants_; }
  AdmissionController& admission() { return admission_; }
  // The same `key=value` line rendering the STATS opcode returns.
  std::string StatsText() const;

 private:
  struct Conn;
  struct IoThread;

  void IoLoop(IoThread* t);
  void AcceptReady(IoThread* t);
  void AdoptPending(IoThread* t);
  void HandleConnEvent(IoThread* t, Conn* c, uint32_t events);
  // Reads until EAGAIN, then decodes and executes the pipelined window.
  // Returns false when the connection must close.
  bool DrainAndProcess(IoThread* t, Conn* c);
  bool ProcessFrames(IoThread* t, Conn* c);
  void ExecuteReadRun(IoThread* t, Conn* c);
  void ExecuteWriteRun(IoThread* t, Conn* c);
  void EmitError(Conn* c, uint32_t request_id, uint32_t tenant_id,
                 StatusCode code, std::string_view message,
                 uint32_t retry_after_millis = 0);
  void EmitHealth(IoThread* t, Conn* c, uint32_t request_id,
                  uint32_t tenant_id);
  TenantCounters* TenantFor(Conn* c, uint32_t tenant_id);
  // Returns false when the socket died.
  bool FlushOutput(IoThread* t, Conn* c);
  void UpdateInterest(IoThread* t, Conn* c);
  void CloseConn(IoThread* t, Conn* c);
  void MaybePollStoreStats();
  // Closes connections write-blocked past write_stall_timeout_seconds.
  void WatchdogSweep(IoThread* t);
  std::unique_ptr<Conn> MakeConn(IoThread* t, int fd);
  uint64_t NowMicros() const { return clock_->NowNanos() / 1000; }

  core::KvStore* const store_;
  const ServerOptions options_;
  RealClock default_clock_;
  Clock* const clock_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::vector<std::unique_ptr<IoThread>> io_threads_;
  std::atomic<size_t> next_thread_{0};

  TenantRegistry tenants_;
  AdmissionController admission_;

  // Last observed composite store health; written by the stats poll, the
  // HEALTH opcode, and write-run IoError refreshes, read per write frame.
  // A degraded store keeps serving reads; writes bounce with kUnavailable.
  std::atomic<bool> store_degraded_{false};

  Mutex stats_poll_mu_;
  double last_stats_poll_ GUARDED_BY(stats_poll_mu_) = 0;

  // Counters are sharded per I/O thread (each thread mutates only its own
  // slot, with relaxed atomics so counters() can read concurrently);
  // counters() sums them.
  struct alignas(64) ThreadCounters {
    std::atomic<uint64_t> connections_accepted{0};
    std::atomic<uint64_t> connections_closed{0};
    std::atomic<uint64_t> frames_in{0};
    std::atomic<uint64_t> frames_out{0};
    std::atomic<uint64_t> protocol_errors{0};
    std::atomic<uint64_t> bytes_in{0};
    std::atomic<uint64_t> bytes_out{0};
    std::atomic<uint64_t> windows{0};
    std::atomic<uint64_t> read_runs{0};
    std::atomic<uint64_t> write_runs{0};
    std::atomic<uint64_t> shed_frames{0};
    std::atomic<uint64_t> deadline_expired{0};
    std::atomic<uint64_t> watchdog_kills{0};
    std::atomic<uint64_t> degraded_write_rejects{0};
  };
  std::vector<std::unique_ptr<ThreadCounters>> thread_counters_;
};

}  // namespace costperf::server

#endif  // COSTPERF_SERVER_SERVER_H_
