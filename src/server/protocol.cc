#include "server/protocol.h"

#include <cstring>

#include "common/coding.h"
#include "common/crc32.h"

namespace costperf::server {

const char* DecodeResultName(DecodeResult r) {
  switch (r) {
    case DecodeResult::kOk: return "ok";
    case DecodeResult::kNeedMore: return "need-more";
    case DecodeResult::kBadMagic: return "bad-magic";
    case DecodeResult::kBadVersion: return "bad-version";
    case DecodeResult::kBadChecksum: return "bad-checksum";
    case DecodeResult::kTooLarge: return "too-large";
  }
  return "unknown";
}

void EncodeHeader(const FrameHeader& h, char* out) {
  out[0] = static_cast<char>(kMagic0);
  out[1] = static_cast<char>(kMagic1);
  out[2] = static_cast<char>(h.version);
  out[3] = static_cast<char>(h.opcode);
  EncodeFixed32(out + 4, h.request_id);
  EncodeFixed32(out + 8, h.tenant_id);
  EncodeFixed32(out + 12, h.payload_len);
  if (h.version >= kWireVersion2) {
    EncodeFixed64(out + 16, h.deadline_micros);
    EncodeFixed32(out + 24, MaskCrc(Crc32c(out, 24)));
  } else {
    EncodeFixed32(out + 16, MaskCrc(Crc32c(out, 16)));
  }
}

DecodeResult DecodeHeader(const char* data, size_t len, FrameHeader* out) {
  // Magic is checked as soon as its bytes exist: a stream that opens with
  // garbage (say, an HTTP request) is rejected immediately instead of
  // stalling until kHeaderSize bytes trickle in.
  if (len >= 1 && static_cast<uint8_t>(data[0]) != kMagic0) {
    return DecodeResult::kBadMagic;
  }
  if (len >= 2 && static_cast<uint8_t>(data[1]) != kMagic1) {
    return DecodeResult::kBadMagic;
  }
  if (len < kHeaderSize) return DecodeResult::kNeedMore;
  // The version byte selects the header layout (and so where the checksum
  // lives). An unknown version is rejected before the checksum: there is
  // no layout under which we could validate it. For known versions the
  // checksum is still what decides — a corrupt byte 2 that lands on
  // another *valid* version fails its checksum.
  const uint8_t version = static_cast<uint8_t>(data[2]);
  if (version == 0 || version > kMaxWireVersion) {
    return DecodeResult::kBadVersion;
  }
  const size_t hsize = HeaderSizeForVersion(version);
  if (len < hsize) return DecodeResult::kNeedMore;
  const size_t crc_at = hsize - 4;
  const uint32_t expect = UnmaskCrc(DecodeFixed32(data + crc_at));
  if (Crc32c(data, crc_at) != expect) return DecodeResult::kBadChecksum;
  out->version = version;
  out->opcode = static_cast<uint8_t>(data[3]);
  out->request_id = DecodeFixed32(data + 4);
  out->tenant_id = DecodeFixed32(data + 8);
  out->payload_len = DecodeFixed32(data + 12);
  out->deadline_micros =
      version >= kWireVersion2 ? DecodeFixed64(data + 16) : 0;
  out->header_size = hsize;
  if (out->payload_len > kMaxPayloadLen) return DecodeResult::kTooLarge;
  return DecodeResult::kOk;
}

void AppendFrame(std::string* out, uint8_t opcode, uint32_t request_id,
                 uint32_t tenant_id, std::string_view payload) {
  AppendFrameDeadline(out, opcode, request_id, tenant_id, 0, payload);
}

void AppendFrameDeadline(std::string* out, uint8_t opcode,
                         uint32_t request_id, uint32_t tenant_id,
                         uint64_t deadline_micros, std::string_view payload) {
  FrameHeader h;
  h.version = deadline_micros != 0 ? kWireVersion2 : kWireVersion;
  h.opcode = opcode;
  h.request_id = request_id;
  h.tenant_id = tenant_id;
  h.payload_len = static_cast<uint32_t>(payload.size());
  h.deadline_micros = deadline_micros;
  char hdr[kHeaderSizeV2];
  EncodeHeader(h, hdr);
  out->append(hdr, HeaderSizeForVersion(h.version));
  out->append(payload.data(), payload.size());
}

void AppendLengthPrefixed(std::string* dst, std::string_view s) {
  PutFixed32(dst, static_cast<uint32_t>(s.size()));
  dst->append(s.data(), s.size());
}

bool GetU32(std::string_view* in, uint32_t* out) {
  if (in->size() < 4) return false;
  *out = DecodeFixed32(in->data());
  in->remove_prefix(4);
  return true;
}

bool GetU8(std::string_view* in, uint8_t* out) {
  if (in->empty()) return false;
  *out = static_cast<uint8_t>((*in)[0]);
  in->remove_prefix(1);
  return true;
}

bool GetLengthPrefixed(std::string_view* in, std::string_view* out) {
  uint32_t len = 0;
  if (!GetU32(in, &len)) return false;
  if (in->size() < len) return false;
  *out = in->substr(0, len);
  in->remove_prefix(len);
  return true;
}

uint8_t EncodeStatusCode(StatusCode code) {
  return static_cast<uint8_t>(code);
}

StatusCode DecodeStatusCode(uint8_t b) {
  if (b > static_cast<uint8_t>(StatusCode::kDeadlineExceeded)) {
    return StatusCode::kInternal;
  }
  return static_cast<StatusCode>(b);
}

}  // namespace costperf::server
