#include "server/admission.h"

namespace costperf::server {

TenantCounters* TenantRegistry::Get(uint32_t tenant_id) {
  MutexLock lock(&mu_);
  return &tenants_[tenant_id];
}

std::vector<TenantSnapshot> TenantRegistry::Snapshot() const {
  MutexLock lock(&mu_);
  std::vector<TenantSnapshot> out;
  out.reserve(tenants_.size());
  for (const auto& [id, c] : tenants_) {
    TenantSnapshot s;
    s.tenant_id = id;
    s.requests = c.requests.load(std::memory_order_relaxed);
    s.read_keys = c.read_keys.load(std::memory_order_relaxed);
    s.write_keys = c.write_keys.load(std::memory_order_relaxed);
    s.rejected = c.rejected.load(std::memory_order_relaxed);
    s.errors = c.errors.load(std::memory_order_relaxed);
    s.bytes_in = c.bytes_in.load(std::memory_order_relaxed);
    s.bytes_out = c.bytes_out.load(std::memory_order_relaxed);
    out.push_back(s);
  }
  return out;
}

AdmissionController::AdmissionController(Clock* clock,
                                         AdmissionOptions options)
    : clock_(clock), options_(options) {}

void AdmissionController::ObserveStoreStats(const core::KvStoreStats& stats) {
  MutexLock lock(&mu_);
  if (seen_stats_ && stats.write_stalls > last_write_stalls_) {
    const double now = clock_->NowSeconds();
    if (pushback_until_ <= now) {
      windows_.fetch_add(1, std::memory_order_relaxed);
    }
    pushback_until_ = now + options_.pushback_window_seconds;
  }
  last_write_stalls_ = stats.write_stalls;
  seen_stats_ = true;
}

bool AdmissionController::AdmitWrite(uint32_t tenant_id,
                                     uint64_t write_keys) {
  MutexLock lock(&mu_);
  TenantShare& share = shares_[tenant_id];
  share.write_keys += write_keys;
  total_write_keys_ += write_keys;

  if (pushback_until_ <= clock_->NowSeconds()) return true;
  if (total_write_keys_ < options_.min_write_keys) return true;

  const size_t active = shares_.size();
  const double fair =
      options_.share_slack / static_cast<double>(active == 0 ? 1 : active);
  const double mine = static_cast<double>(share.write_keys) /
                      static_cast<double>(total_write_keys_);
  if (active > 1 && mine > fair) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  return true;
}

bool AdmissionController::in_pushback() const {
  MutexLock lock(&mu_);
  return pushback_until_ > clock_->NowSeconds();
}

}  // namespace costperf::server
