#include "server/admission.h"

namespace costperf::server {

TenantCounters* TenantRegistry::Get(uint32_t tenant_id) {
  MutexLock lock(&mu_);
  auto it = tenants_.find(tenant_id);
  if (it != tenants_.end()) return &it->second;
  if (tenants_.size() < max_tenants_ || tenant_id == kOverflowTenantId) {
    return &tenants_[tenant_id];
  }
  // Map is full: fold this id into the shared overflow bucket (created on
  // first overflow, so the map tops out at max_tenants_ + 1 entries).
  return &tenants_[kOverflowTenantId];
}

std::vector<TenantSnapshot> TenantRegistry::Snapshot() const {
  MutexLock lock(&mu_);
  std::vector<TenantSnapshot> out;
  out.reserve(tenants_.size());
  for (const auto& [id, c] : tenants_) {
    TenantSnapshot s;
    s.tenant_id = id;
    s.requests = c.requests.load(std::memory_order_relaxed);
    s.read_keys = c.read_keys.load(std::memory_order_relaxed);
    s.write_keys = c.write_keys.load(std::memory_order_relaxed);
    s.rejected = c.rejected.load(std::memory_order_relaxed);
    s.errors = c.errors.load(std::memory_order_relaxed);
    s.bytes_in = c.bytes_in.load(std::memory_order_relaxed);
    s.bytes_out = c.bytes_out.load(std::memory_order_relaxed);
    out.push_back(s);
  }
  return out;
}

AdmissionController::AdmissionController(Clock* clock,
                                         AdmissionOptions options)
    : clock_(clock), options_(options) {}

void AdmissionController::DecayShares(double now) {
  const double halflife = options_.share_halflife_seconds;
  if (halflife <= 0) return;
  const double elapsed = now - last_decay_;
  if (elapsed < halflife) return;
  const auto steps = static_cast<uint64_t>(elapsed / halflife);
  last_decay_ += static_cast<double>(steps) * halflife;
  // 63 halvings zero any uint64 share, so cap the shift there.
  const int shift = steps > 63 ? 63 : static_cast<int>(steps);
  total_write_keys_ = 0;
  for (auto it = shares_.begin(); it != shares_.end();) {
    it->second.write_keys >>= shift;
    if (it->second.write_keys == 0) {
      it = shares_.erase(it);  // idle tenants leave the active set
    } else {
      total_write_keys_ += it->second.write_keys;
      ++it;
    }
  }
}

void AdmissionController::ObserveStoreStats(const core::KvStoreStats& stats) {
  MutexLock lock(&mu_);
  const double now = clock_->NowSeconds();
  DecayShares(now);
  if (seen_stats_ && stats.write_stalls > last_write_stalls_) {
    if (pushback_until_ <= now) {
      windows_.fetch_add(1, std::memory_order_relaxed);
    }
    pushback_until_ = now + options_.pushback_window_seconds;
  }
  last_write_stalls_ = stats.write_stalls;
  seen_stats_ = true;
}

bool AdmissionController::AdmitWrite(uint32_t tenant_id,
                                     uint64_t write_keys) {
  MutexLock lock(&mu_);
  DecayShares(clock_->NowSeconds());
  TenantShare* share;
  auto it = shares_.find(tenant_id);
  if (it != shares_.end()) {
    share = &it->second;
  } else if (shares_.size() < options_.max_tracked_tenants ||
             tenant_id == kOverflowTenantId) {
    share = &shares_[tenant_id];
  } else {
    // Past the cap, unseen ids share one bucket — and one fair share, so
    // an id-spraying client cannot dodge pushback by looking like many
    // small tenants (decay frees slots as real tenants go idle).
    share = &shares_[kOverflowTenantId];
  }
  share->write_keys += write_keys;
  total_write_keys_ += write_keys;

  if (pushback_until_ <= clock_->NowSeconds()) return true;
  if (total_write_keys_ < options_.min_write_keys) return true;

  const size_t active = shares_.size();
  const double fair =
      options_.share_slack / static_cast<double>(active == 0 ? 1 : active);
  const double mine = static_cast<double>(share->write_keys) /
                      static_cast<double>(total_write_keys_);
  if (active > 1 && mine > fair) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  return true;
}

bool AdmissionController::in_pushback() const {
  MutexLock lock(&mu_);
  return pushback_until_ > clock_->NowSeconds();
}

}  // namespace costperf::server
