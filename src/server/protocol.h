#ifndef COSTPERF_SERVER_PROTOCOL_H_
#define COSTPERF_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace costperf::server {

// Wire format: length-prefixed frames, pipelined over a byte stream.
//
// Version 1 header (20 bytes):
//   [0..1]   magic 0xCF 0x5E
//   [2]      version (1)
//   [3]      opcode; responses set kResponseBit, errors use kOpError
//   [4..7]   request_id   (LE u32, echoed verbatim in the response)
//   [8..11]  tenant_id    (LE u32, names the billing/stats bucket)
//   [12..15] payload_len  (LE u32, bytes following the header)
//   [16..19] MaskCrc(Crc32c(header bytes [0..15]))
//
// Version 2 header (28 bytes) extends v1 with a request deadline:
//   [0..15]  as v1, with version byte 2
//   [16..23] deadline_micros (LE u64): the request's *relative* budget in
//            microseconds, measured from server receipt. 0 = no deadline.
//            A request whose budget expires before (or while) its run
//            executes is answered kDeadlineExceeded without store work.
//   [24..27] MaskCrc(Crc32c(header bytes [0..23]))
//
// Both versions are accepted on the same connection, frame by frame; the
// version byte selects the header size. Responses are always emitted as v1
// (deadlines are a request property). The checksum covers only the header:
// it is what lets the server trust payload_len before committing buffer
// space, so a flipped length byte is caught before it can be mistaken for
// a 4 GB frame. Payload integrity is the transport's job (TCP); the header
// checksum is framing armor.
//
// Request payloads:
//   GET        key bytes (the whole payload is the key)
//   PUT        u32 key_len, key, value (rest of payload)
//   DEL        key bytes
//   MULTIGET   u32 count, then count x (u32 len, key)
//   WRITEBATCH u32 count, then count x (u32 klen, key, u32 vlen, value)
//   STATS      empty
//   HEALTH     empty
//
// Response payloads (opcode | kResponseBit):
//   GET        u8 status, value bytes when status==kOk
//   PUT/DEL    u8 status
//   MULTIGET   u32 count, then count x (u8 status, u32 vlen, value)
//   WRITEBATCH u32 count, then count x u8 status
//   STATS      text: one `key=value` per line
//   HEALTH     u8 overall_health (0 healthy, 1 degraded), u32
//              retry_after_millis hint (nonzero when writes are being
//              rejected), u32 shard_count, shard_count x u8 per-shard
//              health, then u64 shed_frames, u64 deadline_expired,
//              u64 watchdog_kills, u64 degraded_write_rejects
//   kOpError   u8 status, u32 retry_after_millis (0 when retrying is
//              pointless), human-readable message (sent when the request
//              could not be executed at all: unknown opcode, admission
//              pushback, load shed, expired deadline, malformed payload,
//              degraded-store write rejection)
//
// A frame the decoder cannot trust (bad magic, bad checksum, unsupported
// version, oversized length) is not answerable — the stream offset itself
// is in doubt — so the server responds with a final error frame
// (request_id 0) and closes the connection.

inline constexpr size_t kHeaderSize = 20;    // v1
inline constexpr size_t kHeaderSizeV2 = 28;  // v2 (adds u64 deadline + crc)
inline constexpr uint8_t kMagic0 = 0xCF;
inline constexpr uint8_t kMagic1 = 0x5E;
inline constexpr uint8_t kWireVersion = 1;
inline constexpr uint8_t kWireVersion2 = 2;
inline constexpr uint8_t kMaxWireVersion = kWireVersion2;
inline constexpr uint8_t kResponseBit = 0x80;
inline constexpr uint32_t kMaxPayloadLen = 8u << 20;  // 8 MiB per frame

enum Opcode : uint8_t {
  kOpGet = 0x01,
  kOpPut = 0x02,
  kOpDelete = 0x03,
  kOpMultiGet = 0x04,
  kOpWriteBatch = 0x05,
  kOpStats = 0x06,
  kOpHealth = 0x07,
  kOpError = 0x7F,
};

struct FrameHeader {
  uint8_t version = kWireVersion;
  uint8_t opcode = 0;
  uint32_t request_id = 0;
  uint32_t tenant_id = 0;
  uint32_t payload_len = 0;
  // v2 only; 0 for v1 frames (and for v2 frames with no deadline).
  uint64_t deadline_micros = 0;
  // Filled by DecodeHeader: bytes the decoded header occupied.
  size_t header_size = kHeaderSize;
};

// Header size implied by a version byte (v2 and above use the v2 layout;
// EncodeHeader writes this many bytes).
inline constexpr size_t HeaderSizeForVersion(uint8_t version) {
  return version >= kWireVersion2 ? kHeaderSizeV2 : kHeaderSize;
}

enum class DecodeResult {
  kOk,           // *out filled; header + payload_len bytes may follow
  kNeedMore,     // not enough bytes yet for this frame's header
  kBadMagic,     // stream is not speaking this protocol (or lost sync)
  kBadVersion,   // version this build does not understand
  kBadChecksum,  // header corrupted in flight
  kTooLarge,     // payload_len exceeds kMaxPayloadLen
};

const char* DecodeResultName(DecodeResult r);

// Writes exactly HeaderSizeForVersion(h.version) bytes (checksum included)
// to `out`.
void EncodeHeader(const FrameHeader& h, char* out);

// Validates magic/version/checksum/length. Does not consume input. On kOk,
// out->header_size says how many bytes the header used (20 for v1, 28 for
// v2) and out->deadline_micros carries the v2 deadline (0 for v1).
DecodeResult DecodeHeader(const char* data, size_t len, FrameHeader* out);

// Appends a complete v1 frame (header + payload) to `out`.
void AppendFrame(std::string* out, uint8_t opcode, uint32_t request_id,
                 uint32_t tenant_id, std::string_view payload);

// Appends a frame carrying a deadline: emits a v2 header when
// deadline_micros != 0, a plain v1 frame otherwise (so deadline-free
// traffic stays byte-identical to v1 clients).
void AppendFrameDeadline(std::string* out, uint8_t opcode,
                         uint32_t request_id, uint32_t tenant_id,
                         uint64_t deadline_micros, std::string_view payload);

// -- payload helpers ---------------------------------------------------------

void AppendLengthPrefixed(std::string* dst, std::string_view s);

// Reads a u32 length + that many bytes from the front of *in, advancing it.
// Returns false (leaving *in unspecified) on truncation.
bool GetLengthPrefixed(std::string_view* in, std::string_view* out);
bool GetU32(std::string_view* in, uint32_t* out);
bool GetU8(std::string_view* in, uint8_t* out);

// StatusCode travels as one byte; unknown bytes decode to kInternal so a
// corrupt status can never be mistaken for success.
uint8_t EncodeStatusCode(StatusCode code);
StatusCode DecodeStatusCode(uint8_t b);

}  // namespace costperf::server

#endif  // COSTPERF_SERVER_PROTOCOL_H_
