#ifndef COSTPERF_SERVER_PROTOCOL_H_
#define COSTPERF_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace costperf::server {

// Wire format: length-prefixed frames, pipelined over a byte stream.
//
//   [0..1]   magic 0xCF 0x5E
//   [2]      version (kWireVersion)
//   [3]      opcode; responses set kResponseBit, errors use kOpError
//   [4..7]   request_id   (LE u32, echoed verbatim in the response)
//   [8..11]  tenant_id    (LE u32, names the billing/stats bucket)
//   [12..15] payload_len  (LE u32, bytes following the header)
//   [16..19] MaskCrc(Crc32c(header bytes [0..15]))
//
// The checksum covers only the header: it is what lets the server trust
// payload_len before committing buffer space, so a flipped length byte is
// caught before it can be mistaken for a 4 GB frame. Payload integrity is
// the transport's job (TCP); the header checksum is framing armor.
//
// Request payloads:
//   GET        key bytes (the whole payload is the key)
//   PUT        u32 key_len, key, value (rest of payload)
//   DEL        key bytes
//   MULTIGET   u32 count, then count x (u32 len, key)
//   WRITEBATCH u32 count, then count x (u32 klen, key, u32 vlen, value)
//   STATS      empty
//
// Response payloads (opcode | kResponseBit):
//   GET        u8 status, value bytes when status==kOk
//   PUT/DEL    u8 status
//   MULTIGET   u32 count, then count x (u8 status, u32 vlen, value)
//   WRITEBATCH u32 count, then count x u8 status
//   STATS      text: one `key=value` per line
//   kOpError   u8 status, human-readable message (sent when the request
//              could not be executed at all: unknown opcode, admission
//              pushback, malformed payload)
//
// A frame the decoder cannot trust (bad magic, bad checksum, unsupported
// version, oversized length) is not answerable — the stream offset itself
// is in doubt — so the server responds with a final error frame
// (request_id 0) and closes the connection.

inline constexpr size_t kHeaderSize = 20;
inline constexpr uint8_t kMagic0 = 0xCF;
inline constexpr uint8_t kMagic1 = 0x5E;
inline constexpr uint8_t kWireVersion = 1;
inline constexpr uint8_t kResponseBit = 0x80;
inline constexpr uint32_t kMaxPayloadLen = 8u << 20;  // 8 MiB per frame

enum Opcode : uint8_t {
  kOpGet = 0x01,
  kOpPut = 0x02,
  kOpDelete = 0x03,
  kOpMultiGet = 0x04,
  kOpWriteBatch = 0x05,
  kOpStats = 0x06,
  kOpError = 0x7F,
};

struct FrameHeader {
  uint8_t version = kWireVersion;
  uint8_t opcode = 0;
  uint32_t request_id = 0;
  uint32_t tenant_id = 0;
  uint32_t payload_len = 0;
};

enum class DecodeResult {
  kOk,           // *out filled; header + payload_len bytes may follow
  kNeedMore,     // fewer than kHeaderSize bytes available
  kBadMagic,     // stream is not speaking this protocol (or lost sync)
  kBadVersion,   // version this build does not understand
  kBadChecksum,  // header corrupted in flight
  kTooLarge,     // payload_len exceeds kMaxPayloadLen
};

const char* DecodeResultName(DecodeResult r);

// Writes exactly kHeaderSize bytes (checksum included) to `out`.
void EncodeHeader(const FrameHeader& h, char* out);

// Validates magic/version/checksum/length. Does not consume input.
DecodeResult DecodeHeader(const char* data, size_t len, FrameHeader* out);

// Appends a complete frame (header + payload) to `out`.
void AppendFrame(std::string* out, uint8_t opcode, uint32_t request_id,
                 uint32_t tenant_id, std::string_view payload);

// -- payload helpers ---------------------------------------------------------

void AppendLengthPrefixed(std::string* dst, std::string_view s);

// Reads a u32 length + that many bytes from the front of *in, advancing it.
// Returns false (leaving *in unspecified) on truncation.
bool GetLengthPrefixed(std::string_view* in, std::string_view* out);
bool GetU32(std::string_view* in, uint32_t* out);
bool GetU8(std::string_view* in, uint8_t* out);

// StatusCode travels as one byte; unknown bytes decode to kInternal so a
// corrupt status can never be mistaken for success.
uint8_t EncodeStatusCode(StatusCode code);
StatusCode DecodeStatusCode(uint8_t b);

}  // namespace costperf::server

#endif  // COSTPERF_SERVER_PROTOCOL_H_
