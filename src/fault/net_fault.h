#ifndef COSTPERF_FAULT_NET_FAULT_H_
#define COSTPERF_FAULT_NET_FAULT_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <sys/types.h>

#include "common/mutex.h"
#include "common/random.h"
#include "common/thread_annotations.h"

namespace costperf::fault {

// Scripted misbehavior for one connection. All fields compose; a
// default-constructed plan is a transparent pass-through. Byte thresholds
// count bytes that actually crossed the channel (post-clamp), so
// fail_read_after_bytes = 100 means the 101st byte is never delivered.
struct NetFaultPlan {
  // Clamp every read()/send() to at most this many bytes, forcing short
  // reads and torn frames. 0 = no clamp.
  size_t max_read_bytes = 0;
  size_t max_write_bytes = 0;

  // Per-call probability of failing with read_errno / write_errno instead
  // of touching the socket. An injected error kills the channel: every
  // later call fails the same way (a reset peer stays reset).
  double read_error_rate = 0.0;
  double write_error_rate = 0.0;
  int read_errno = 104;   // ECONNRESET
  int write_errno = 32;   // EPIPE

  // Mid-stream disconnect: deliver exactly N bytes in that direction, then
  // fail every call with read_errno / write_errno. 0 = disarmed.
  uint64_t fail_read_after_bytes = 0;
  uint64_t fail_write_after_bytes = 0;

  // Slowloris: after N bytes have been written, every further send()
  // returns EAGAIN forever — the peer stops draining but the connection
  // stays open. 0 = disarmed. (Use 1 to stall almost immediately while
  // still counting as write-blocked-with-progress-once.)
  uint64_t stall_write_after_bytes = 0;

  // Read-side variant: after N bytes read, read() returns EAGAIN forever —
  // the peer goes mute without closing. 0 = disarmed.
  uint64_t mute_read_after_bytes = 0;

  bool active() const {
    return max_read_bytes != 0 || max_write_bytes != 0 ||
           read_error_rate > 0.0 || write_error_rate > 0.0 ||
           fail_read_after_bytes != 0 || fail_write_after_bytes != 0 ||
           stall_write_after_bytes != 0 || mute_read_after_bytes != 0;
  }
};

struct NetFaultStats {
  uint64_t channels_created = 0;
  uint64_t reads_seen = 0;
  uint64_t writes_seen = 0;
  uint64_t short_reads = 0;       // reads clamped below the caller's len
  uint64_t short_writes = 0;
  uint64_t injected_read_errors = 0;
  uint64_t injected_write_errors = 0;
  uint64_t injected_stalls = 0;   // sends answered EAGAIN by the stall rule
};

class NetFaultInjector;

// Per-connection fault executor. Created by NetFaultInjector::NewChannel
// and owned by the connection; NOT thread-safe (a connection is
// single-threaded by construction in both the server and SyncClient).
// Read/Send wrap the syscalls and apply the plan; with an inactive plan
// they are a branch away from the raw syscall.
class NetChannel {
 public:
  // Wraps ::read(fd, buf, len). Returns the syscall's result, possibly
  // clamped; injected failures return -1 with errno set per the plan.
  ssize_t Read(int fd, void* buf, size_t len);
  // Wraps ::send(fd, buf, len, flags).
  ssize_t Send(int fd, const void* buf, size_t len, int flags);

  const NetFaultPlan& plan() const { return plan_; }
  uint64_t bytes_read() const { return bytes_read_; }
  uint64_t bytes_written() const { return bytes_written_; }
  // True once an injected error has killed the channel.
  bool dead() const { return dead_errno_ != 0; }

 private:
  friend class NetFaultInjector;
  NetChannel(NetFaultInjector* owner, NetFaultPlan plan, uint64_t seed)
      : owner_(owner), plan_(plan), active_(plan.active()), rng_(seed) {}

  NetFaultInjector* owner_;
  NetFaultPlan plan_;
  bool active_;
  int dead_errno_ = 0;     // injected-kill errno; 0 = alive
  bool read_dead_ = false; // direction the kill applies to (both when rate-killed)
  bool write_dead_ = false;
  uint64_t bytes_read_ = 0;
  uint64_t bytes_written_ = 0;
  Random rng_;
};

// Seeded factory + script queue for NetChannels, mirroring FaultInjector's
// armed-flag discipline: a constructed-but-unscripted injector hands out
// pass-through channels, and the serving hot path pays one branch on a
// null/inactive channel. Thread-safe (channels are created from every I/O
// thread's accept path); the channels it returns are not.
//
//   NetFaultInjector nf(seed);
//   nf.ScriptConnection({.max_read_bytes = 3});        // first channel
//   nf.ScriptConnection({.fail_write_after_bytes = 64});  // second channel
//   opts.net_fault = &nf;  // server wraps each accepted fd in NewChannel()
//
// Channels consume scripted plans FIFO in creation order; once the queue is
// empty, channels get default_plan (pass-through unless set).
class NetFaultInjector {
 public:
  explicit NetFaultInjector(uint64_t seed = 0x5eedfa17ull);

  // Queues a plan for the next unscripted channel (FIFO).
  void ScriptConnection(const NetFaultPlan& plan);
  // Plan for channels created after the script queue is exhausted.
  void set_default_plan(const NetFaultPlan& plan);

  // Creates the next channel. Each channel gets an independent rng seeded
  // from the injector seed + creation index, so a multi-connection plan
  // replays identically regardless of accept interleaving.
  std::unique_ptr<NetChannel> NewChannel();

  // Drops queued plans and the default plan. Stats are kept. Already
  // created channels keep their plans (they belong to live connections).
  void Reset();

  // True iff any queued or default plan would do anything — the armed-flag
  // fast path: an attached, unarmed injector only costs the per-connection
  // NewChannel call plus a dead branch per I/O.
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  NetFaultStats stats() const;

 private:
  friend class NetChannel;
  void RecomputeArmed() REQUIRES(mu_);
  // Channel-side stat sinks (relaxed atomics; channels race with readers).
  std::atomic<uint64_t> reads_seen_{0};
  std::atomic<uint64_t> writes_seen_{0};
  std::atomic<uint64_t> short_reads_{0};
  std::atomic<uint64_t> short_writes_{0};
  std::atomic<uint64_t> injected_read_errors_{0};
  std::atomic<uint64_t> injected_write_errors_{0};
  std::atomic<uint64_t> injected_stalls_{0};

  std::atomic<bool> armed_{false};
  mutable Mutex mu_;
  uint64_t seed_ GUARDED_BY(mu_);
  uint64_t channels_created_ GUARDED_BY(mu_) = 0;
  std::deque<NetFaultPlan> scripted_ GUARDED_BY(mu_);
  NetFaultPlan default_plan_ GUARDED_BY(mu_);
};

}  // namespace costperf::fault

#endif  // COSTPERF_FAULT_NET_FAULT_H_
