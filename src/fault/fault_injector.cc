#include "fault/fault_injector.h"

#include <algorithm>
#include <string>

namespace costperf::fault {

FaultInjector::FaultInjector(uint64_t seed) : rng_(seed) {}

FaultInjector::~FaultInjector() { Detach(); }

void FaultInjector::Attach(storage::SsdDevice* device) {
  Detach();
  device_ = device;
  device_->set_fault_hook(this);
}

void FaultInjector::Detach() {
  if (device_ != nullptr && device_->fault_hook() == this) {
    device_->set_fault_hook(nullptr);
  }
  device_ = nullptr;
}

void FaultInjector::ScheduleCrash(uint64_t writes, double torn_fraction) {
  MutexLock lk(&mu_);
  writes_until_crash_ = static_cast<int64_t>(writes);
  torn_fraction_ = std::clamp(torn_fraction, 0.0, 1.0);
  RecomputeArmed();
}

bool FaultInjector::crashed() const {
  MutexLock lk(&mu_);
  return crashed_;
}

void FaultInjector::ClearCrash() {
  MutexLock lk(&mu_);
  crashed_ = false;
  writes_until_crash_ = -1;
  read_error_rate_ = write_error_rate_ = 0.0;
  persistent_read_failure_ = persistent_write_failure_ = false;
  corrupt_write_rate_ = 0.0;
  corrupt_write_bits_ = 0;
  RecomputeArmed();
}

void FaultInjector::set_read_error_rate(double p) {
  MutexLock lk(&mu_);
  read_error_rate_ = std::clamp(p, 0.0, 1.0);
  RecomputeArmed();
}

void FaultInjector::set_write_error_rate(double p) {
  MutexLock lk(&mu_);
  write_error_rate_ = std::clamp(p, 0.0, 1.0);
  RecomputeArmed();
}

void FaultInjector::set_persistent_read_failure(bool on) {
  MutexLock lk(&mu_);
  persistent_read_failure_ = on;
  RecomputeArmed();
}

void FaultInjector::set_persistent_write_failure(bool on) {
  MutexLock lk(&mu_);
  persistent_write_failure_ = on;
  RecomputeArmed();
}

void FaultInjector::ArmWriteCorruption(double p, int bits) {
  MutexLock lk(&mu_);
  corrupt_write_rate_ = std::clamp(p, 0.0, 1.0);
  corrupt_write_bits_ = bits;
  RecomputeArmed();
}

Status FaultInjector::CorruptRange(uint64_t offset, uint64_t len, int bits) {
  if (device_ == nullptr) return Status::FailedPrecondition("not attached");
  if (len == 0 || bits <= 0) return Status::Ok();
  std::string buf(len, '\0');
  Status s = device_->Read(offset, len, buf.data());
  if (!s.ok()) return s;
  {
    MutexLock lk(&mu_);
    for (int i = 0; i < bits; ++i) {
      uint64_t at = rng_.Uniform(len);
      buf[at] = static_cast<char>(buf[at] ^ (1u << rng_.Uniform(8)));
    }
  }
  return device_->Write(offset, Slice(buf));
}

void FaultInjector::Reset() {
  MutexLock lk(&mu_);
  crashed_ = false;
  writes_until_crash_ = -1;
  torn_fraction_ = 0.0;
  read_error_rate_ = write_error_rate_ = 0.0;
  persistent_read_failure_ = persistent_write_failure_ = false;
  corrupt_write_rate_ = 0.0;
  corrupt_write_bits_ = 0;
  RecomputeArmed();
}

FaultInjectorStats FaultInjector::stats() const {
  MutexLock lk(&mu_);
  FaultInjectorStats s = stats_;
  s.reads_seen += idle_reads_.load(std::memory_order_relaxed);
  s.writes_seen += idle_writes_.load(std::memory_order_relaxed);
  return s;
}

bool FaultInjector::Flip(double p) {
  if (p <= 0.0) return false;
  return rng_.Bernoulli(p);
}

void FaultInjector::RecomputeArmed() {
  const bool armed = crashed_ || writes_until_crash_ >= 0 ||
                     persistent_read_failure_ || persistent_write_failure_ ||
                     read_error_rate_ > 0.0 || write_error_rate_ > 0.0 ||
                     (corrupt_write_bits_ > 0 && corrupt_write_rate_ > 0.0);
  armed_.store(armed, std::memory_order_release);
}

Status FaultInjector::OnRead(uint64_t offset, size_t len) {
  (void)offset;
  (void)len;
  if (!armed_.load(std::memory_order_acquire)) {
    idle_reads_.fetch_add(1, std::memory_order_relaxed);
    return Status::Ok();
  }
  MutexLock lk(&mu_);
  stats_.reads_seen++;
  if (crashed_) {
    stats_.post_crash_ios++;
    stats_.read_errors++;
    return Status::IoError("injected: device crashed (fail-stop)");
  }
  if (persistent_read_failure_) {
    stats_.read_errors++;
    return Status::IoError("injected: persistent read failure");
  }
  if (Flip(read_error_rate_)) {
    stats_.read_errors++;
    return Status::IoError("injected: transient read error");
  }
  return Status::Ok();
}

storage::IoFaultHook::WriteOutcome FaultInjector::OnWrite(uint64_t offset,
                                                          size_t len) {
  (void)offset;
  WriteOutcome out;
  if (!armed_.load(std::memory_order_acquire)) {
    idle_writes_.fetch_add(1, std::memory_order_relaxed);
    return out;
  }
  MutexLock lk(&mu_);
  stats_.writes_seen++;
  if (crashed_) {
    stats_.post_crash_ios++;
    stats_.write_errors++;
    out.status = Status::IoError("injected: device crashed (fail-stop)");
    out.admit_bytes = 0;
    return out;
  }
  if (writes_until_crash_ == 0) {
    // The crash-point write: a prefix reaches media, then the lights go
    // out. Everything after this fails until ClearCrash().
    crashed_ = true;
    writes_until_crash_ = -1;
    out.status = Status::IoError("injected: crash during write (torn)");
    out.admit_bytes = static_cast<size_t>(
        static_cast<double>(len) * torn_fraction_);
    stats_.torn_writes++;
    stats_.write_errors++;
    return out;
  }
  if (persistent_write_failure_) {
    stats_.write_errors++;
    out.status = Status::IoError("injected: persistent write failure");
    out.admit_bytes = 0;
    return out;
  }
  if (Flip(write_error_rate_)) {
    stats_.write_errors++;
    out.status = Status::IoError("injected: transient write error");
    out.admit_bytes = 0;
    return out;
  }
  if (corrupt_write_bits_ > 0 && len > 0 && Flip(corrupt_write_rate_)) {
    for (int i = 0; i < corrupt_write_bits_; ++i) {
      out.bit_flips.emplace_back(rng_.Uniform(len),
                                 static_cast<uint8_t>(1u << rng_.Uniform(8)));
    }
    stats_.corrupted_writes++;
  }
  if (writes_until_crash_ > 0) writes_until_crash_--;
  return out;
}

}  // namespace costperf::fault
