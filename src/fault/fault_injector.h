#ifndef COSTPERF_FAULT_FAULT_INJECTOR_H_
#define COSTPERF_FAULT_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/mutex.h"
#include "common/random.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "storage/device.h"

namespace costperf::fault {

// Counters for everything the injector saw and did. Plain snapshot.
struct FaultInjectorStats {
  uint64_t reads_seen = 0;
  uint64_t writes_seen = 0;
  uint64_t read_errors = 0;        // reads failed (any cause)
  uint64_t write_errors = 0;       // writes failed (any cause)
  uint64_t torn_writes = 0;        // crash-point writes that persisted a prefix
  uint64_t corrupted_writes = 0;   // writes that had bits flipped
  uint64_t post_crash_ios = 0;     // I/Os rejected because the device is down
};

// Deterministic, scriptable fault plan executor. Attach to a live
// SsdDevice and arm faults at runtime:
//
//   FaultInjector fi(seed);
//   fi.Attach(&device);
//   fi.ScheduleCrash(/*writes=*/7, /*torn_fraction=*/0.4);
//   ... workload runs; the 8th write persists 40% and fails, every I/O
//   ... after it fails with IoError until ClearCrash()
//   fi.ClearCrash();
//   store.Recover();
//
// All faults are driven by one seeded xorshift PRNG, so a plan replays
// identically for the same seed and I/O sequence. Thread-safe: the device
// calls OnRead/OnWrite from every I/O thread.
class FaultInjector : public storage::IoFaultHook {
 public:
  explicit FaultInjector(uint64_t seed = 0xfa017dead5eedull);
  ~FaultInjector() override;

  // Registers this injector as `device`'s hook (and remembers the device
  // for CorruptRange). Detach() — or destruction — unhooks it.
  void Attach(storage::SsdDevice* device);
  void Detach();

  // --- scripted fail-stop crash -------------------------------------------
  // After `writes` more admitted writes, the next write becomes the crash
  // point: it persists floor(len * torn_fraction) bytes and returns
  // IoError. Every subsequent I/O fails until ClearCrash() (the machine is
  // down). torn_fraction 0 models a write that never reached media at all.
  void ScheduleCrash(uint64_t writes, double torn_fraction);
  bool crashed() const;
  // "Reboot": I/O works again. Armed rates/persistent faults are cleared
  // too — recovery runs against healthy media unless re-armed.
  void ClearCrash();

  // --- transient errors (runtime adjustable) ------------------------------
  // Each read/write independently fails with the given probability. A
  // transient failure rejects the whole I/O; nothing reaches media.
  void set_read_error_rate(double p);
  void set_write_error_rate(double p);

  // --- persistent failures ------------------------------------------------
  // Every matching I/O fails until turned off (a dead channel, not a
  // glitch). Used to drive CachingStore into its degraded state.
  void set_persistent_read_failure(bool on);
  void set_persistent_write_failure(bool on);

  // --- corruption ---------------------------------------------------------
  // Arms silent corruption: each future write independently has
  // probability p of `bits` random single-bit flips within its payload.
  // The write still reports success — checksums must catch it.
  void ArmWriteCorruption(double p, int bits);
  // Flips `bits` seeded-random bits in [offset, offset+len) on the attached
  // device right now (a direct read-modify-write through the device; call
  // it with no other faults armed).
  Status CorruptRange(uint64_t offset, uint64_t len, int bits);

  // Disarms everything (crash schedule, rates, persistent faults,
  // corruption). Stats are kept.
  void Reset();

  FaultInjectorStats stats() const;

  // storage::IoFaultHook:
  Status OnRead(uint64_t offset, size_t len) override;
  WriteOutcome OnWrite(uint64_t offset, size_t len) override;

 private:
  bool Flip(double p) REQUIRES(mu_);
  // Re-derives armed_ from the fault plan; called by every setter.
  void RecomputeArmed() REQUIRES(mu_);

  storage::SsdDevice* device_ = nullptr;

  // Fast-path gate: true iff any fault is armed. When false, OnRead and
  // OnWrite only bump the idle counters — an attached-but-idle injector
  // costs a couple of uncontended atomics per I/O, not a mutex.
  std::atomic<bool> armed_{false};
  std::atomic<uint64_t> idle_reads_{0};
  std::atomic<uint64_t> idle_writes_{0};

  mutable Mutex mu_;
  Random rng_ GUARDED_BY(mu_);
  // Crash plan: count of admitted writes remaining before the crash-point
  // write; -1 = disarmed.
  int64_t writes_until_crash_ GUARDED_BY(mu_) = -1;
  double torn_fraction_ GUARDED_BY(mu_) = 0.0;
  bool crashed_ GUARDED_BY(mu_) = false;
  double read_error_rate_ GUARDED_BY(mu_) = 0.0;
  double write_error_rate_ GUARDED_BY(mu_) = 0.0;
  bool persistent_read_failure_ GUARDED_BY(mu_) = false;
  bool persistent_write_failure_ GUARDED_BY(mu_) = false;
  double corrupt_write_rate_ GUARDED_BY(mu_) = 0.0;
  int corrupt_write_bits_ GUARDED_BY(mu_) = 0;
  FaultInjectorStats stats_ GUARDED_BY(mu_);
};

}  // namespace costperf::fault

#endif  // COSTPERF_FAULT_FAULT_INJECTOR_H_
