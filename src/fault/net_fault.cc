#include "fault/net_fault.h"

#include <cerrno>
#include <sys/socket.h>
#include <unistd.h>

namespace costperf::fault {

namespace {
// Mixes a channel index into the injector seed so each channel replays
// independently of sibling channels' I/O interleaving.
uint64_t MixSeed(uint64_t seed, uint64_t index) {
  uint64_t x = seed + 0x9E3779B97F4A7C15ull * (index + 1);
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  return x ? x : 1;
}
}  // namespace

ssize_t NetChannel::Read(int fd, void* buf, size_t len) {
  if (!active_) return ::read(fd, buf, len);
  owner_->reads_seen_.fetch_add(1, std::memory_order_relaxed);
  if (read_dead_) {
    errno = dead_errno_;
    return -1;
  }
  if (plan_.mute_read_after_bytes != 0 &&
      bytes_read_ >= plan_.mute_read_after_bytes) {
    errno = EAGAIN;  // caller parks the connection as if the peer went mute
    return -1;
  }
  if (plan_.read_error_rate > 0.0 &&
      rng_.NextDouble() < plan_.read_error_rate) {
    owner_->injected_read_errors_.fetch_add(1, std::memory_order_relaxed);
    dead_errno_ = plan_.read_errno;
    read_dead_ = write_dead_ = true;  // a reset peer is reset both ways
    errno = dead_errno_;
    return -1;
  }
  size_t want = len;
  if (plan_.max_read_bytes != 0 && want > plan_.max_read_bytes) {
    want = plan_.max_read_bytes;
  }
  if (plan_.fail_read_after_bytes != 0) {
    if (bytes_read_ >= plan_.fail_read_after_bytes) {
      owner_->injected_read_errors_.fetch_add(1, std::memory_order_relaxed);
      dead_errno_ = plan_.read_errno;
      read_dead_ = true;
      errno = dead_errno_;
      return -1;
    }
    const uint64_t budget = plan_.fail_read_after_bytes - bytes_read_;
    if (want > budget) want = static_cast<size_t>(budget);
  }
  if (plan_.mute_read_after_bytes != 0) {
    const uint64_t budget = plan_.mute_read_after_bytes - bytes_read_;
    if (want > budget) want = static_cast<size_t>(budget);
  }
  ssize_t r = ::read(fd, buf, want);
  if (r > 0) {
    bytes_read_ += static_cast<uint64_t>(r);
    if (static_cast<size_t>(r) == want && want < len) {
      owner_->short_reads_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return r;
}

ssize_t NetChannel::Send(int fd, const void* buf, size_t len, int flags) {
  if (!active_) return ::send(fd, buf, len, flags);
  owner_->writes_seen_.fetch_add(1, std::memory_order_relaxed);
  if (write_dead_) {
    errno = dead_errno_;
    return -1;
  }
  if (plan_.stall_write_after_bytes != 0 &&
      bytes_written_ >= plan_.stall_write_after_bytes) {
    owner_->injected_stalls_.fetch_add(1, std::memory_order_relaxed);
    errno = EAGAIN;
    return -1;
  }
  if (plan_.write_error_rate > 0.0 &&
      rng_.NextDouble() < plan_.write_error_rate) {
    owner_->injected_write_errors_.fetch_add(1, std::memory_order_relaxed);
    dead_errno_ = plan_.write_errno;
    read_dead_ = write_dead_ = true;
    errno = dead_errno_;
    return -1;
  }
  size_t want = len;
  if (plan_.max_write_bytes != 0 && want > plan_.max_write_bytes) {
    want = plan_.max_write_bytes;
  }
  if (plan_.fail_write_after_bytes != 0) {
    if (bytes_written_ >= plan_.fail_write_after_bytes) {
      owner_->injected_write_errors_.fetch_add(1, std::memory_order_relaxed);
      dead_errno_ = plan_.write_errno;
      write_dead_ = true;
      errno = dead_errno_;
      return -1;
    }
    const uint64_t budget = plan_.fail_write_after_bytes - bytes_written_;
    if (want > budget) want = static_cast<size_t>(budget);
  }
  if (plan_.stall_write_after_bytes != 0) {
    const uint64_t budget = plan_.stall_write_after_bytes - bytes_written_;
    if (want > budget) want = static_cast<size_t>(budget);
  }
  ssize_t w = ::send(fd, buf, want, flags);
  if (w > 0) {
    bytes_written_ += static_cast<uint64_t>(w);
    if (static_cast<size_t>(w) == want && want < len) {
      owner_->short_writes_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return w;
}

NetFaultInjector::NetFaultInjector(uint64_t seed) : seed_(seed ? seed : 1) {}

void NetFaultInjector::ScriptConnection(const NetFaultPlan& plan) {
  MutexLock l(&mu_);
  scripted_.push_back(plan);
  RecomputeArmed();
}

void NetFaultInjector::set_default_plan(const NetFaultPlan& plan) {
  MutexLock l(&mu_);
  default_plan_ = plan;
  RecomputeArmed();
}

std::unique_ptr<NetChannel> NetFaultInjector::NewChannel() {
  MutexLock l(&mu_);
  NetFaultPlan plan = default_plan_;
  if (!scripted_.empty()) {
    plan = scripted_.front();
    scripted_.pop_front();
    RecomputeArmed();
  }
  const uint64_t index = channels_created_++;
  return std::unique_ptr<NetChannel>(
      new NetChannel(this, plan, MixSeed(seed_, index)));
}

void NetFaultInjector::Reset() {
  MutexLock l(&mu_);
  scripted_.clear();
  default_plan_ = NetFaultPlan{};
  RecomputeArmed();
}

void NetFaultInjector::RecomputeArmed() {
  bool armed = default_plan_.active();
  for (const auto& p : scripted_) armed = armed || p.active();
  armed_.store(armed, std::memory_order_relaxed);
}

NetFaultStats NetFaultInjector::stats() const {
  NetFaultStats s;
  {
    MutexLock l(&mu_);
    s.channels_created = channels_created_;
  }
  s.reads_seen = reads_seen_.load(std::memory_order_relaxed);
  s.writes_seen = writes_seen_.load(std::memory_order_relaxed);
  s.short_reads = short_reads_.load(std::memory_order_relaxed);
  s.short_writes = short_writes_.load(std::memory_order_relaxed);
  s.injected_read_errors =
      injected_read_errors_.load(std::memory_order_relaxed);
  s.injected_write_errors =
      injected_write_errors_.load(std::memory_order_relaxed);
  s.injected_stalls = injected_stalls_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace costperf::fault
