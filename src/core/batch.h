#ifndef COSTPERF_CORE_BATCH_H_
#define COSTPERF_CORE_BATCH_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/batch_op.h"
#include "common/slice.h"
#include "common/status.h"

namespace costperf::core {

// One upsert entry of a write batch.
using KvEntry = std::pair<std::string, std::string>;

// One probe of a low-level batched read (KvStore::BatchGet). The struct
// itself lives in common/batch_op.h because the index structures speak
// the very same type (BwTree::MultiGetBatch, MassTree::LookupBatch):
// the store layers hand the caller's op array straight down without a
// per-layer translation copy.
using BatchGetOp = ::costperf::BatchGetOp;

// Per-call read knobs, carried through the batch surface so a new knob is
// an added field instead of a signature change everywhere.
struct ReadOptions {
  // Per-key value size cap: a key whose value exceeds this many bytes
  // gets a kResourceExhausted per-key status and no value copy. The
  // server uses it to bound response-frame size. 0 = unlimited.
  size_t max_value_bytes = 0;
};

// Per-call write knobs.
struct WriteOptions {
  // Stop applying entries after the first non-OK status; the remaining
  // entries report kAborted("not attempted"). Default applies every
  // entry regardless (per-entry statuses tell the caller what stuck).
  bool fail_fast = false;
};

// Out-param result of a batched read. statuses[i]/values[i] belong to
// keys[i] of the call that filled it. The value vector never shrinks, so
// each slot's heap buffer survives Reset() and a steady-state batch loop
// performs no per-key allocation — this is the replacement for the old
// vector<Result<std::string>> return, which allocated a fresh string per
// hit per call.
//
// values[i] is meaningful only when statuses[i].ok(); other slots may
// hold stale bytes from an earlier batch.
struct BatchReadResult {
  std::vector<Status> statuses;
  std::vector<std::string> values;

  // Prepares for an n-key batch: statuses reset to Ok, value slot
  // capacity retained.
  void Reset(size_t n) {
    statuses.assign(n, Status());
    if (values.size() < n) values.resize(n);
  }

  size_t size() const { return statuses.size(); }

  size_t found() const {
    size_t n = 0;
    for (const Status& s : statuses) n += s.ok() ? 1 : 0;
    return n;
  }

  // First status that is neither Ok nor NotFound (NotFound is an answer,
  // not an error); Ok when every key resolved.
  Status FirstError() const {
    for (const Status& s : statuses) {
      if (!s.ok() && !s.IsNotFound()) return s;
    }
    return Status::Ok();
  }
};

// Out-param result of a batched write: one status per entry, in input
// order, instead of the old single first-error Status that swallowed
// every outcome after the first failure.
struct BatchWriteResult {
  std::vector<Status> statuses;
  uint64_t ok_count = 0;

  void Reset(size_t n) {
    statuses.assign(n, Status());
    ok_count = 0;
  }

  size_t size() const { return statuses.size(); }
  bool all_ok() const { return ok_count == statuses.size(); }

  Status FirstError() const {
    for (const Status& s : statuses) {
      if (!s.ok()) return s;
    }
    return Status::Ok();
  }
};

}  // namespace costperf::core

#endif  // COSTPERF_CORE_BATCH_H_
