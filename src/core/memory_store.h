#ifndef COSTPERF_CORE_MEMORY_STORE_H_
#define COSTPERF_CORE_MEMORY_STORE_H_

#include <memory>
#include <string>

#include "core/kv_store.h"
#include "masstree/masstree.h"

namespace costperf::core {

// The paper's main-memory system: a MassTree with all data permanently
// resident. Higher per-op performance (P_x) bought with a larger memory
// footprint (M_x).
class MemoryStore : public KvStore {
 public:
  MemoryStore() : tree_(std::make_unique<masstree::MassTree>()) {}

  Status Put(const Slice& key, const Slice& value) override {
    return tree_->Put(key, value);
  }
  Result<std::string> Get(const Slice& key) override {
    return tree_->Get(key);
  }
  using KvStore::Get;  // keep the out-param overload visible
  // Batched reads go through MassTree's miss-interleaved LookupBatch;
  // core::BatchGetOp and masstree::MassTree::LookupOp are the same
  // shared type (common/batch_op.h), so the op array passes straight
  // through.
  void BatchGet(BatchGetOp* ops, size_t count) override;
  Status Delete(const Slice& key) override { return tree_->Delete(key); }
  Status Scan(const Slice& start, size_t limit,
              std::vector<std::pair<std::string, std::string>>* out)
      override {
    return tree_->Scan(start, limit, out);
  }

  uint64_t MemoryFootprintBytes() const override {
    return tree_->MemoryFootprintBytes();
  }

  KvStoreStats Stats() const override;
  std::string DebugString() const override;
  void Maintain() override { tree_->ReclaimMemory(); }

  masstree::MassTree* tree() { return tree_.get(); }

 private:
  std::unique_ptr<masstree::MassTree> tree_;
};

}  // namespace costperf::core

#endif  // COSTPERF_CORE_MEMORY_STORE_H_
