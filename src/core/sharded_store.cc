#include "core/sharded_store.h"

#include <algorithm>

namespace costperf::core {

namespace {

// FNV-1a 64-bit: stable across runs/processes so shard placement is part
// of the store's durable contract (recovery reattaches shard i to the
// same key subset it owned before the restart).
uint64_t Fnv1a(const Slice& key) {
  uint64_t h = 1469598103934665603ull;
  for (size_t i = 0; i < key.size(); ++i) {
    h ^= static_cast<unsigned char>(key[i]);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

ShardedStore::ShardedStore(size_t shard_count, const ShardFactory& factory) {
  if (shard_count == 0) shard_count = 1;
  shards_.reserve(shard_count);
  for (size_t i = 0; i < shard_count; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->store = factory(i);
    InitReader(shard.get());
    shards_.push_back(std::move(shard));
  }
  if ((shard_count & (shard_count - 1)) == 0) shard_mask_ = shard_count - 1;
}

ShardedStore::ShardedStore(std::vector<std::unique_ptr<KvStore>> shards) {
  if (shards.empty()) shards.push_back(std::make_unique<MemoryStore>());
  shards_.reserve(shards.size());
  for (auto& store : shards) {
    auto shard = std::make_unique<Shard>();
    shard->store = std::move(store);
    InitReader(shard.get());
    shards_.push_back(std::move(shard));
  }
  const size_t n = shards_.size();
  if ((n & (n - 1)) == 0) shard_mask_ = n - 1;
}

void ShardedStore::InitReader(Shard* shard) {
  // Under the shard latch to satisfy analysis; there is no concurrency
  // during construction.
  MutexLock lock(&shard->mu);
  shard->reader =
      shard->store->ConcurrentSafe() ? shard->store.get() : nullptr;
}

std::unique_ptr<ShardedStore> ShardedStore::OfMemory(size_t shard_count) {
  return std::make_unique<ShardedStore>(
      shard_count, [](size_t) { return std::make_unique<MemoryStore>(); });
}

std::unique_ptr<ShardedStore> ShardedStore::OfCaching(
    size_t shard_count, const CachingStoreOptions& per_shard) {
  CachingStoreOptions opts = per_shard;
  std::unique_ptr<maintenance::MaintenanceScheduler> scheduler;
  if (opts.background.workers > 0 && opts.background.scheduler == nullptr) {
    // One shared worker pool for the whole composite, not one per shard.
    maintenance::MaintenanceScheduler::Options sched_opts;
    sched_opts.workers = opts.background.workers;
    sched_opts.quota = opts.background.quota;
    scheduler =
        std::make_unique<maintenance::MaintenanceScheduler>(sched_opts);
    opts.background.scheduler = scheduler.get();
    opts.background.workers = 0;
  }
  auto store = std::make_unique<ShardedStore>(shard_count, [&opts](size_t) {
    return std::make_unique<CachingStore>(opts);
  });
  store->scheduler_ = std::move(scheduler);
  return store;
}

size_t ShardedStore::ShardIndexOf(const Slice& key) const {
  const uint64_t h = Fnv1a(key);
  if (shard_mask_ != 0) return h & shard_mask_;
  return h % shards_.size();
}

Status ShardedStore::Put(const Slice& key, const Slice& value) {
  Shard& shard = *shards_[ShardIndexOf(key)];
  MutexLock lock(&shard.mu);
  return shard.store->Put(key, value);
}

Result<std::string> ShardedStore::Get(const Slice& key) {
  Shard& shard = *shards_[ShardIndexOf(key)];
  // Concurrent-safe inner stores serve reads without the shard latch —
  // this is what lets the in-cache read path scale past one reader per
  // shard (writes still serialize per shard).
  if (shard.reader != nullptr) return shard.reader->Get(key);
  MutexLock lock(&shard.mu);
  return shard.store->Get(key);
}

Status ShardedStore::Get(const Slice& key, std::string* value_out) {
  Shard& shard = *shards_[ShardIndexOf(key)];
  if (shard.reader != nullptr) return shard.reader->Get(key, value_out);
  MutexLock lock(&shard.mu);
  return shard.store->Get(key, value_out);
}

Status ShardedStore::Delete(const Slice& key) {
  Shard& shard = *shards_[ShardIndexOf(key)];
  MutexLock lock(&shard.mu);
  return shard.store->Delete(key);
}

Status ShardedStore::Scan(
    const Slice& start, size_t limit,
    std::vector<std::pair<std::string, std::string>>* out) {
  out->clear();
  if (limit == 0) return Status::Ok();
  // Each shard yields a sorted run of up to `limit` records >= start; the
  // first `limit` of the merged runs are exactly the global answer
  // because shards hold disjoint key sets.
  std::vector<std::vector<std::pair<std::string, std::string>>> runs(
      shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    Shard& shard = *shards_[i];
    MutexLock lock(&shard.mu);
    Status s = shard.store->Scan(start, limit, &runs[i]);
    if (!s.ok()) return s;
  }
  // K is small (shard count), so a repeated min-front pass beats the
  // bookkeeping of a heap for the sizes involved.
  std::vector<size_t> cursor(runs.size(), 0);
  while (out->size() < limit) {
    size_t best = runs.size();
    for (size_t i = 0; i < runs.size(); ++i) {
      if (cursor[i] >= runs[i].size()) continue;
      if (best == runs.size() ||
          runs[i][cursor[i]].first < runs[best][cursor[best]].first) {
        best = i;
      }
    }
    if (best == runs.size()) break;  // all runs exhausted
    out->push_back(std::move(runs[best][cursor[best]]));
    ++cursor[best];
  }
  return Status::Ok();
}

namespace {

// Thread-local grouping scratch for the batched paths: a counting sort of
// item positions by owning shard (counts → prefix offsets → scattered
// order). Reused across calls and across ShardedStore instances, so the
// steady-state batched path performs no allocation.
struct GroupScratch {
  std::vector<uint32_t> shard_of;  // owning shard per item
  std::vector<uint32_t> start;     // shard_count+1 prefix offsets
  std::vector<uint32_t> cursor;    // scatter cursors (copy of start)
  std::vector<uint32_t> order;     // item positions grouped by shard
  // Read ops scattered into shard-grouped order (BatchGet only). Each
  // op keeps the caller's value/status pointers, so per-shard batch
  // probes write straight into the caller's slots — no merge-back pass.
  std::vector<BatchGetOp> grouped;
};

GroupScratch& TlsGroupScratch() {
  static thread_local GroupScratch scratch;
  return scratch;
}

}  // namespace

void ShardedStore::BatchGet(BatchGetOp* ops, size_t count) {
  const size_t n = count;
  const size_t shard_count = shards_.size();
  GroupScratch& g = TlsGroupScratch();
  g.shard_of.resize(n);
  g.start.assign(shard_count + 1, 0);
  g.order.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const uint32_t s = static_cast<uint32_t>(ShardIndexOf(ops[i].key));
    g.shard_of[i] = s;
    ++g.start[s + 1];
  }
  for (size_t s = 0; s < shard_count; ++s) g.start[s + 1] += g.start[s];
  g.cursor.assign(g.start.begin(), g.start.end() - 1);
  for (size_t i = 0; i < n; ++i) {
    g.order[g.cursor[g.shard_of[i]]++] = static_cast<uint32_t>(i);
  }
  // Scatter ops into shard-grouped order so each shard gets one
  // contiguous run for its batch probe. Slot pointers ride along, so
  // the probes fill the caller's buffers directly.
  g.grouped.resize(n);
  for (size_t k = 0; k < n; ++k) g.grouped[k] = ops[g.order[k]];

  uint64_t groups = 0;
  for (size_t s = 0; s < shard_count; ++s) {
    const uint32_t begin = g.start[s], end = g.start[s + 1];
    if (begin == end) continue;
    ++groups;
    Shard& shard = *shards_[s];
    if (shard.reader != nullptr) {
      // Latch-free reader: the whole group runs without the shard latch.
      shard.reader->BatchGet(g.grouped.data() + begin, end - begin);
      continue;
    }
    MutexLock lock(&shard.mu);
    shard.store->BatchGet(g.grouped.data() + begin, end - begin);
  }
  multiget_batches_.fetch_add(1, std::memory_order_relaxed);
  multiget_keys_.fetch_add(n, std::memory_order_relaxed);
  multiget_groups_.fetch_add(groups, std::memory_order_relaxed);
}

Status ShardedStore::WriteBatch(std::span<const KvEntry> entries,
                                const WriteOptions& options,
                                BatchWriteResult* out) {
  out->Reset(entries.size());
  const size_t n = entries.size();

  if (options.fail_fast) {
    // fail_fast promises "stop after the first failure in input order",
    // which shard grouping cannot honor (groups reorder execution); take
    // the sequential path for this rare mode.
    writebatch_batches_.fetch_add(1, std::memory_order_relaxed);
    writebatch_entries_.fetch_add(n, std::memory_order_relaxed);
    for (size_t i = 0; i < n; ++i) {
      Status s = Put(Slice(entries[i].first), Slice(entries[i].second));
      const bool failed = !s.ok();
      if (s.ok()) ++out->ok_count;
      out->statuses[i] = std::move(s);
      writebatch_groups_.fetch_add(1, std::memory_order_relaxed);
      if (failed) {
        for (size_t j = i + 1; j < n; ++j) {
          out->statuses[j] = Status::Aborted("not attempted (fail_fast)");
        }
        break;
      }
    }
    return out->FirstError();
  }

  const size_t shard_count = shards_.size();
  GroupScratch& g = TlsGroupScratch();
  g.shard_of.resize(n);
  g.start.assign(shard_count + 1, 0);
  g.order.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const uint32_t s =
        static_cast<uint32_t>(ShardIndexOf(Slice(entries[i].first)));
    g.shard_of[i] = s;
    ++g.start[s + 1];
  }
  for (size_t s = 0; s < shard_count; ++s) g.start[s + 1] += g.start[s];
  g.cursor.assign(g.start.begin(), g.start.end() - 1);
  for (size_t i = 0; i < n; ++i) {
    g.order[g.cursor[g.shard_of[i]]++] = static_cast<uint32_t>(i);
  }

  uint64_t groups = 0;
  for (size_t s = 0; s < shard_count; ++s) {
    const uint32_t begin = g.start[s], end = g.start[s + 1];
    if (begin == end) continue;
    ++groups;
    Shard& shard = *shards_[s];
    MutexLock lock(&shard.mu);
    for (uint32_t k = begin; k < end; ++k) {
      const uint32_t i = g.order[k];
      // Within a shard, entries apply in input order (the counting sort
      // is stable), so same-key entries keep last-writer-wins semantics.
      Status st = shard.store->Put(Slice(entries[i].first),
                                   Slice(entries[i].second));
      if (st.ok()) ++out->ok_count;
      out->statuses[i] = std::move(st);
    }
  }
  writebatch_batches_.fetch_add(1, std::memory_order_relaxed);
  writebatch_entries_.fetch_add(n, std::memory_order_relaxed);
  writebatch_groups_.fetch_add(groups, std::memory_order_relaxed);
  return out->FirstError();
}

uint64_t ShardedStore::MemoryFootprintBytes() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(&shard->mu);
    total += shard->store->MemoryFootprintBytes();
  }
  return total;
}

KvStoreStats ShardedStore::Stats() const {
  KvStoreStats total;
  for (const auto& shard : shards_) {
    MutexLock lock(&shard->mu);
    total += shard->store->Stats();
  }
  // Batch grouping is a property of this composite, not of any shard.
  total.multiget_batches += multiget_batches_.load(std::memory_order_relaxed);
  total.multiget_keys += multiget_keys_.load(std::memory_order_relaxed);
  total.multiget_shard_groups +=
      multiget_groups_.load(std::memory_order_relaxed);
  total.writebatch_batches +=
      writebatch_batches_.load(std::memory_order_relaxed);
  total.writebatch_entries +=
      writebatch_entries_.load(std::memory_order_relaxed);
  total.writebatch_shard_groups +=
      writebatch_groups_.load(std::memory_order_relaxed);
  return total;
}

std::vector<HealthStatus> ShardedStore::PerShardHealth() const {
  std::vector<HealthStatus> out;
  out.reserve(shards_.size());
  for (const auto& shard : shards_) {
    MutexLock lock(&shard->mu);
    out.push_back(shard->store->Stats().health);
  }
  return out;
}

std::string ShardedStore::DebugString() const {
  return "sharded[" + std::to_string(shards_.size()) + "] " +
         Stats().ToString();
}

void ShardedStore::Maintain() {
  for (auto& shard : shards_) {
    MutexLock lock(&shard->mu);
    shard->store->Maintain();
  }
}

std::vector<analysis::Violation> ShardedStore::CheckInvariants() {
  std::vector<analysis::Violation> out;
  for (size_t i = 0; i < shards_.size(); ++i) {
    Shard& shard = *shards_[i];
    MutexLock lock(&shard.mu);
    for (analysis::Violation& v : shard.store->CheckInvariants()) {
      v.entity = "shard " + std::to_string(i) +
                 (v.entity.empty() ? "" : " " + v.entity);
      out.push_back(std::move(v));
    }
  }
  return out;
}

void ShardedStore::WithShard(size_t i,
                             const std::function<void(KvStore*)>& fn) {
  Shard& shard = *shards_[i];
  MutexLock lock(&shard.mu);
  fn(shard.store.get());
}

}  // namespace costperf::core
