#ifndef COSTPERF_CORE_CACHING_STORE_H_
#define COSTPERF_CORE_CACHING_STORE_H_

#include <condition_variable>
#include <memory>
#include <string>

#include "bwtree/bwtree.h"
#include "common/lock_order.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "core/kv_store.h"
#include "costmodel/advisor.h"
#include "llama/cache_manager.h"
#include "llama/log_store.h"
#include "maintenance/scheduler.h"
#include "storage/device.h"

namespace costperf::core {

struct CachingStoreOptions {
  // DRAM budget for resident leaf pages. 0 = unbounded (fully cached
  // Bw-tree, the §5 configuration).
  uint64_t memory_budget_bytes = 64ull << 20;
  llama::EvictionPolicy eviction_policy = llama::EvictionPolicy::kLru;
  // Breakeven interval for the cost-based policy; by default derived
  // from CostParams::PaperDefaults() via Eq. (6).
  double breakeven_interval_seconds = 45.0;
  // What eviction keeps in memory and how dirty pages reach flash.
  bwtree::EvictMode evict_mode = bwtree::EvictMode::kFullEviction;
  bwtree::FlushMode flush_mode = bwtree::FlushMode::kFullPage;
  // The compressed-secondary-storage tier (§7.2 / Fig. 8): with a
  // non-zero budget the store runs a live three-level hierarchy —
  // DRAM -> compressed-SS -> SS. Cold DRAM pages demote to a compressed
  // log record (still tracked by the cache manager, promoted back on
  // touch); CSS overflow falls through to plain SS; demotion refuses
  // pages whose measured compression ratio or reheat rate would make the
  // tier a loss.
  struct TierOptions {
    // Stored-byte budget for CSS-tier pages. 0 disables the tier.
    uint64_t css_budget_bytes = 0;
    // Only pages idle at least this long are demotion candidates.
    double demote_idle_seconds = 30.0;
    // Refuse demotion when compressed/raw exceeds this.
    double min_ratio = 0.85;
    // Refuse pages already promoted back out of CSS this many times.
    uint32_t max_reheats = 4;
    // Background promotion: pull the hottest CSS pages back to DRAM
    // while resident bytes sit below this fraction of the memory budget
    // (<= 0 disables proactive promotion; demand promotion on touch
    // always works).
    double promote_fill_floor = 0.7;
  };
  TierOptions tier;
  // Cache recency sampling: only every Nth Touch per thread reads the
  // clock and refreshes the recency tick; the rest just set the CLOCK
  // reference bit. 1 = exact recency on every touch (see
  // CacheOptions::touch_sample).
  uint32_t cache_touch_sample = 1;
  // Cache shard count override; 0 = CacheManager default.
  uint32_t cache_shards = 0;
  // Run maintenance every N operations.
  uint32_t maintenance_interval_ops = 256;
  // GC: collect segments below this live fraction during maintenance.
  double gc_live_threshold = 0.0;  // 0 disables GC in maintenance
  // Merge adjacent leaves whose combined payload is below this fraction
  // of max_page_bytes during maintenance. 0 disables merging.
  double merge_fill_target = 0.0;
  // Degrade to read-only after this many consecutive write-path IoErrors
  // (put/delete/flush/evict/checkpoint). 0 disables health tracking.
  uint32_t degrade_after_write_failures = 3;

  // Background maintenance. Inactive by default: with scheduler == nullptr
  // and workers == 0 the store keeps the historical inline behavior
  // (Maintain() runs on the calling thread every maintenance_interval_ops
  // operations). When active, the op path only *signals* pressure — an
  // atomic threshold check, never eviction/GC I/O — and scheduler worker
  // threads drain it in quota-bounded steps.
  struct BackgroundMaintenanceOptions {
    // External scheduler to register with (shared across stores/shards).
    // Not owned; must outlive the store.
    maintenance::MaintenanceScheduler* scheduler = nullptr;
    // When > 0 and no external scheduler is given, the store owns a
    // private scheduler with this many worker threads.
    uint32_t workers = 0;
    // Per-step work bounds for the owned scheduler (ignored when an
    // external scheduler is supplied — its own quota applies).
    maintenance::MaintenanceQuota quota;
    // Signal when resident bytes exceed this fraction of the memory
    // budget (<= 0 disables the fill trigger; interval signals remain).
    double cache_fill_trigger = 0.9;
    // Signal when the log's dead-space fraction exceeds this (<= 0
    // disables background GC).
    double log_dead_trigger = 0.5;
    // Write backpressure: foreground Put/Delete stalls (bounded) while
    // resident bytes exceed this multiple of the budget, giving the
    // background workers room to catch up instead of letting eviction
    // debt grow without bound. <= 0 disables stalling.
    double stall_trigger = 1.5;
    // Upper bound on a single foreground stall.
    uint32_t stall_max_wait_micros = 100000;
  };
  BackgroundMaintenanceOptions background;

  bwtree::BwTreeOptions tree;        // log_store/cache filled in by us
  storage::SsdOptions device;
  llama::LogStoreOptions log;
  Clock* clock = nullptr;
  // When set, the store attaches to this device instead of creating its
  // own — the restart path: reopen over the old media, then Recover().
  // Not owned; must outlive the store.
  storage::SsdDevice* external_device = nullptr;
};

// The paper's data caching system: Bw-tree data component over the LLAMA
// log-structured cache/storage subsystem over a (simulated) flash SSD.
class CachingStore : public KvStore,
                     private maintenance::BackgroundMaintainer {
 public:
  explicit CachingStore(CachingStoreOptions options = {});
  ~CachingStore() override;

  Status Put(const Slice& key, const Slice& value) override;
  Result<std::string> Get(const Slice& key) override;
  Status Get(const Slice& key, std::string* value_out) override;
  // Batched point reads through the Bw-tree's AMAC-interleaved
  // MultiGetBatch: a group of probes overlaps its mapping-table and
  // delta-chain cache misses instead of paying them serially. Advances
  // the maintenance op counter once per key, like N single Gets.
  void BatchGet(BatchGetOp* ops, size_t count) override;
  Status Delete(const Slice& key) override;
  Status Scan(const Slice& start, size_t limit,
              std::vector<std::pair<std::string, std::string>>* out) override;

  // The read path is latch-free end to end: Bw-tree mapping-table reads,
  // lock-free cache touches, per-thread epoch retire lists. Writes and
  // maintenance coordinate internally (atomics, short per-shard cache
  // latches, try-lock maintenance), so no external serialization is
  // needed either.
  bool ConcurrentSafe() const override { return true; }

  uint64_t MemoryFootprintBytes() const override;
  KvStoreStats Stats() const override;
  std::string DebugString() const override;
  void Maintain() override;
  // Runs BwTreeValidator, MappingTableAuditor and LogStoreAuditor over
  // this store's components (quiescent stores only).
  std::vector<analysis::Violation> CheckInvariants() override;

  // Forces everything dirty to flash and the write buffer to the device.
  Status Checkpoint();
  // Rebuilds the tree from the attached device's log after a restart
  // (discards in-memory state; see BwTree::RecoverFromStore).
  Status Recover();
  // Evicts every leaf page (cold-cache state for miss-rate experiments).
  Status EvictAll();
  // Runs log-structure GC until no segment is below the live threshold.
  Status RunGc(double live_threshold);

  // Health: kDegraded after degrade_after_write_failures consecutive
  // write-path IoErrors. While degraded, reads serve resident and
  // previously flushed data as usual; Put/Delete/WriteBatch/Checkpoint
  // fail fast with the IoError that caused degradation, and maintenance
  // stops issuing flash writes. Clearing the underlying fault does NOT
  // auto-heal — call ResetHealth() once the media is confirmed usable.
  HealthStatus health() const;
  void ResetHealth();

  // Component access for benches and tests.
  bwtree::BwTree* tree() { return tree_.get(); }
  storage::SsdDevice* device() { return attached_device_; }
  llama::LogStructuredStore* log_store() { return log_.get(); }
  llama::CacheManager* cache() { return cache_.get(); }
  const CachingStoreOptions& options() const { return options_; }
  // Null when background maintenance is inactive (inline mode).
  maintenance::MaintenanceScheduler* maintenance_scheduler() {
    return scheduler_;
  }

 private:
  void MaybeMaintain();
  // Batched form of MaybeMaintain: advances the op counter by `count` in
  // one atomic add and replays every pacing boundary the jump crossed, so
  // a batch of N keys paces maintenance exactly like N single ops without
  // paying N shared-counter RMWs on the hot path.
  void NoteBatchOps(uint64_t count);
  // True when op number n crosses the maintenance_interval_ops pacing
  // boundary (single helper for the pow2-mask and modulo paths).
  bool IntervalCrossed(uint64_t n) const;
  // Number of pacing boundaries inside (before, after].
  uint64_t IntervalCrossings(uint64_t before, uint64_t after) const;
  // Background mode: threshold checks + Signal(); no maintenance I/O.
  void MaybeSignalPressure(uint64_t n);
  // The sampled cache-fill / stall / log-dead-space threshold checks
  // shared by the single-op and batched signal paths. Returns whether
  // any threshold wants a maintenance step.
  bool PressureThresholds();
  // Write backpressure: bounded stall while eviction debt exceeds the
  // stall budget. Called from Put/Delete before the tree write.
  void MaybeStallForDebt();
  // BackgroundMaintainer — runs on a scheduler worker thread.
  bool MaintenanceStep(const maintenance::MaintenanceQuota& quota) override;
  bool BackgroundEvictStep(const maintenance::MaintenanceQuota& quota)
      REQUIRES(maintenance_mu_);
  // CSS tier maintenance: demotes cold DRAM pages (quota.compress_pages),
  // drops CSS overflow to plain SS, and promotes hot CSS pages back while
  // DRAM has headroom (quota.promote_pages). No-op when the tier is off.
  bool BackgroundTierStep(const maintenance::MaintenanceQuota& quota)
      REQUIRES(maintenance_mu_);
  // Demote-before-evict decision for one victim: true when the page went
  // to the CSS tier (so plain eviction must be skipped).
  bool TryDemote(mapping::PageId pid) REQUIRES(maintenance_mu_);
  bool BackgroundGcStep(const maintenance::MaintenanceQuota& quota)
      REQUIRES(maintenance_mu_);
  // One prepare-then-collect GC round: picks the coldest sealed segment at
  // or below victim_threshold, rewrites every page that is not simply
  // relocatable (PrepareSegmentForGc), then collects it. NotFound when no
  // segment is eligible. Collecting without the prepare step is unsafe:
  // a record can look dead to GcIsLive merely because the page's current
  // image is memory-only, and trimming it would destroy the only durable
  // copy.
  Status CollectOneSegment(double victim_threshold);
  void BackgroundHousekeepingStep(const maintenance::MaintenanceQuota& quota)
      REQUIRES(maintenance_mu_);
  // Clears the stall flag and wakes stalled writers once resident bytes
  // are back under the stall budget.
  void ReleaseStallWaiters();
  void EnforceBudget() REQUIRES(maintenance_mu_);
  // Ok when writable; the degradation-causing IoError once degraded.
  Status CheckWritable();
  // Health bookkeeping for a write-path status. An IoError grows the
  // failure streak (degrading at the threshold); `reset_on_ok` says
  // whether an OK from this call site is evidence of working media
  // (flush paths) or a possibly memory-only success (Put/Delete, which
  // must not mask concurrent flush failures).
  void NoteWriteOutcome(const Status& s, bool reset_on_ok);

  CachingStoreOptions options_;
  std::unique_ptr<storage::SsdDevice> device_;  // null when external
  storage::SsdDevice* attached_device_ = nullptr;
  std::unique_ptr<llama::LogStructuredStore> log_;
  std::unique_ptr<llama::CacheManager> cache_;
  std::unique_ptr<bwtree::BwTree> tree_;
  std::atomic<uint64_t> op_counter_{0};
  // maintenance_interval_ops - 1 when the interval is a power of two
  // (the common case; lets MaybeMaintain test the counter with a mask
  // instead of a 64-bit division per op), 0 otherwise.
  uint64_t maintenance_mask_ = 0;
  // Single-admission gate for maintenance: concurrent callers whose op
  // count also crosses the interval skip (TryLock fails) instead of
  // double-running eviction/GC (the tree tolerates concurrent
  // flush/evict, but two EnforceBudget passes evict twice the intended
  // bytes). Rank 1 (outermost) in the global lock order: held across a
  // whole maintenance pass, which appends to the log and latches cache
  // shards underneath it (see common/lock_order.h).
  Mutex maintenance_mu_ ACQUIRED_BEFORE(lock_rank::kLogAppend);

  // Background maintenance state. scheduler_ is null in inline mode;
  // otherwise it points at either the caller-supplied scheduler or
  // owned_scheduler_. The destructor Deregisters before any component a
  // step touches is destroyed.
  maintenance::MaintenanceScheduler* scheduler_ = nullptr;
  std::unique_ptr<maintenance::MaintenanceScheduler> owned_scheduler_;
  maintenance::MaintenanceScheduler::Handle maint_handle_ = nullptr;
  // memory_budget_bytes with 0 mapped to ~0 (unbounded).
  uint64_t effective_budget_ = ~0ull;
  // Precomputed trigger thresholds (~0 / 0 = disabled) so the op-path
  // pressure check is integer compares on one resident_bytes read.
  uint64_t fill_trigger_bytes_ = ~0ull;
  uint64_t stall_limit_bytes_ = 0;
  // Resume point for the incremental consolidation/flush scan.
  mapping::PageId housekeeping_cursor_ GUARDED_BY(maintenance_mu_) = 0;

  // Backpressure: the flag is the op-path fast check (relaxed load per
  // Put/Delete); stall_mu_/stall_cv_ only come into play while actually
  // over the stall budget.
  std::atomic<bool> stall_flag_{false};
  // Never wraps another lock: Signal() runs before the stall wait, and
  // the scheduler queue mutex stays ordered after it (lock_order.h).
  Mutex stall_mu_ ACQUIRED_BEFORE(lock_rank::kSchedulerQueue);
  std::condition_variable_any stall_cv_;

  // Maintenance attribution stats. foreground_maintenance_ops_ counts
  // maintenance passes executed on an application thread — the steady
  // state in background mode keeps it at zero.
  std::atomic<uint64_t> foreground_maintenance_ops_{0};
  std::atomic<uint64_t> background_steps_{0};
  std::atomic<uint64_t> bg_pages_evicted_{0};
  std::atomic<uint64_t> bg_pages_demoted_{0};
  std::atomic<uint64_t> bg_pages_promoted_{0};
  std::atomic<uint64_t> bg_css_fallthroughs_{0};
  std::atomic<uint64_t> bg_gc_segments_{0};
  std::atomic<uint64_t> bg_consolidations_{0};
  std::atomic<uint64_t> bg_leaf_flushes_{0};
  std::atomic<uint64_t> write_stalls_{0};
  std::atomic<uint64_t> stall_micros_total_{0};

  // Degraded-mode state. The streak/flag are atomics so the write hot
  // path pays one relaxed load when healthy; the triggering error (shown
  // to callers of failed writes) sits behind its own mutex.
  std::atomic<uint32_t> write_failure_streak_{0};
  std::atomic<bool> degraded_{false};
  mutable Mutex health_mu_;
  Status last_write_error_ GUARDED_BY(health_mu_);
};

}  // namespace costperf::core

#endif  // COSTPERF_CORE_CACHING_STORE_H_
