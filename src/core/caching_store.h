#ifndef COSTPERF_CORE_CACHING_STORE_H_
#define COSTPERF_CORE_CACHING_STORE_H_

#include <memory>
#include <string>

#include "bwtree/bwtree.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "core/kv_store.h"
#include "costmodel/advisor.h"
#include "llama/cache_manager.h"
#include "llama/log_store.h"
#include "storage/device.h"

namespace costperf::core {

struct CachingStoreOptions {
  // DRAM budget for resident leaf pages. 0 = unbounded (fully cached
  // Bw-tree, the §5 configuration).
  uint64_t memory_budget_bytes = 64ull << 20;
  llama::EvictionPolicy eviction_policy = llama::EvictionPolicy::kLru;
  // Breakeven interval for the cost-based policy; by default derived
  // from CostParams::PaperDefaults() via Eq. (6).
  double breakeven_interval_seconds = 45.0;
  // What eviction keeps in memory and how dirty pages reach flash.
  bwtree::EvictMode evict_mode = bwtree::EvictMode::kFullEviction;
  bwtree::FlushMode flush_mode = bwtree::FlushMode::kFullPage;
  // CSS tier (§7.2/Fig. 8): pages idle beyond this interval are flushed
  // *compressed* when evicted — lower media footprint, decompression CPU
  // on their next (rare) access. 0 disables the compressed tier.
  double css_idle_interval_seconds = 0;
  // Run maintenance every N operations.
  uint32_t maintenance_interval_ops = 256;
  // GC: collect segments below this live fraction during maintenance.
  double gc_live_threshold = 0.0;  // 0 disables GC in maintenance
  // Merge adjacent leaves whose combined payload is below this fraction
  // of max_page_bytes during maintenance. 0 disables merging.
  double merge_fill_target = 0.0;

  bwtree::BwTreeOptions tree;        // log_store/cache filled in by us
  storage::SsdOptions device;
  llama::LogStoreOptions log;
  Clock* clock = nullptr;
  // When set, the store attaches to this device instead of creating its
  // own — the restart path: reopen over the old media, then Recover().
  // Not owned; must outlive the store.
  storage::SsdDevice* external_device = nullptr;
};

// The paper's data caching system: Bw-tree data component over the LLAMA
// log-structured cache/storage subsystem over a (simulated) flash SSD.
class CachingStore : public KvStore {
 public:
  explicit CachingStore(CachingStoreOptions options = {});
  ~CachingStore() override;

  Status Put(const Slice& key, const Slice& value) override;
  Result<std::string> Get(const Slice& key) override;
  Status Delete(const Slice& key) override;
  Status Scan(const Slice& start, size_t limit,
              std::vector<std::pair<std::string, std::string>>* out) override;

  uint64_t MemoryFootprintBytes() const override;
  KvStoreStats Stats() const override;
  std::string StatsString() const override;
  void Maintain() override;
  // Runs BwTreeValidator, MappingTableAuditor and LogStoreAuditor over
  // this store's components (quiescent stores only).
  std::vector<analysis::Violation> CheckInvariants() override;

  // Forces everything dirty to flash and the write buffer to the device.
  Status Checkpoint();
  // Rebuilds the tree from the attached device's log after a restart
  // (discards in-memory state; see BwTree::RecoverFromStore).
  Status Recover();
  // Evicts every leaf page (cold-cache state for miss-rate experiments).
  Status EvictAll();
  // Runs log-structure GC until no segment is below the live threshold.
  Status RunGc(double live_threshold);

  // Component access for benches and tests.
  bwtree::BwTree* tree() { return tree_.get(); }
  storage::SsdDevice* device() { return attached_device_; }
  llama::LogStructuredStore* log_store() { return log_.get(); }
  llama::CacheManager* cache() { return cache_.get(); }
  const CachingStoreOptions& options() const { return options_; }

 private:
  void MaybeMaintain();
  void EnforceBudget() REQUIRES(maintenance_mu_);

  CachingStoreOptions options_;
  std::unique_ptr<storage::SsdDevice> device_;  // null when external
  storage::SsdDevice* attached_device_ = nullptr;
  std::unique_ptr<llama::LogStructuredStore> log_;
  std::unique_ptr<llama::CacheManager> cache_;
  std::unique_ptr<bwtree::BwTree> tree_;
  std::atomic<uint64_t> op_counter_{0};
  // Single-admission gate for maintenance: concurrent callers whose op
  // count also crosses the interval skip (TryLock fails) instead of
  // double-running eviction/GC (the tree tolerates concurrent
  // flush/evict, but two EnforceBudget passes evict twice the intended
  // bytes).
  Mutex maintenance_mu_;
};

}  // namespace costperf::core

#endif  // COSTPERF_CORE_CACHING_STORE_H_
