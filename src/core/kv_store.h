#ifndef COSTPERF_CORE_KV_STORE_H_
#define COSTPERF_CORE_KV_STORE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/slice.h"
#include "common/status.h"

namespace costperf::core {

// The library's public key-value abstraction. Implemented by
// CachingStore (Bw-tree over LLAMA over the simulated SSD — the paper's
// data caching system) and MemoryStore (MassTree — the paper's main
// memory system). Workload generators and benches target this interface
// so the two systems run identical workloads.
class KvStore {
 public:
  virtual ~KvStore() = default;

  virtual Status Put(const Slice& key, const Slice& value) = 0;
  virtual Result<std::string> Get(const Slice& key) = 0;
  virtual Status Delete(const Slice& key) = 0;
  virtual Status Scan(
      const Slice& start, size_t limit,
      std::vector<std::pair<std::string, std::string>>* out) = 0;

  // Resident DRAM footprint of the store (data + index + bookkeeping).
  virtual uint64_t MemoryFootprintBytes() const = 0;

  // Human-readable counters for reports.
  virtual std::string StatsString() const = 0;

  // Gives the store a chance to run maintenance (eviction, GC, epoch
  // reclamation). Called periodically by workload runners.
  virtual void Maintain() {}
};

}  // namespace costperf::core

#endif  // COSTPERF_CORE_KV_STORE_H_
