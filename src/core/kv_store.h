#ifndef COSTPERF_CORE_KV_STORE_H_
#define COSTPERF_CORE_KV_STORE_H_

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "analysis/invariant_checker.h"
#include "common/slice.h"
#include "common/status.h"
#include "core/batch.h"

namespace costperf::core {

// Store health. kDegraded means the store has shed write availability
// after persistent device write failures: reads still serve resident and
// previously flushed data, writes fail fast with the original IoError.
// An aggregate (ShardedStore) is degraded when any shard is.
enum class HealthStatus {
  kHealthy = 0,
  kDegraded = 1,
};

inline const char* HealthStatusName(HealthStatus h) {
  return h == HealthStatus::kHealthy ? "healthy" : "degraded";
}

// Structured operation/IO counters common to every KvStore. Benches and
// tests consume these fields directly instead of parsing DebugString().
// "hits" are operations completed purely in memory (the paper's MM ops);
// "misses" needed at least one secondary-storage read (SS ops) — for a
// pure main-memory store misses is always zero.
struct KvStoreStats {
  uint64_t reads = 0;          // Get + Scan operations
  uint64_t writes = 0;         // Put + Delete operations
  uint64_t hits = 0;           // ops served without any flash read (MM)
  uint64_t misses = 0;         // ops that required a flash read (SS)
  uint64_t io_reads = 0;       // device read I/Os
  uint64_t io_writes = 0;      // device write I/Os
  uint64_t bytes_read = 0;     // device bytes read
  uint64_t bytes_written = 0;  // device bytes written
  uint64_t memory_bytes = 0;   // resident DRAM footprint
  uint64_t io_retries = 0;     // transient I/O errors absorbed by retry
  HealthStatus health = HealthStatus::kHealthy;

  // Hot-path contention visibility (so future PRs can see serialization
  // without a profiler): lock-free cache-touch hits, epoch reclamation
  // batches, and log group-append batching.
  uint64_t cache_touches = 0;          // lock-free Touch fast-path hits
  uint64_t cache_touches_sampled = 0;  // of which: ref-bit-only (sampled)
  uint64_t epoch_reclaim_batches = 0;  // reclaim passes that freed memory
  uint64_t epoch_reclaimed_items = 0;  // total retired deleters run
  uint64_t log_append_groups = 0;      // completed append fill groups
  // Append group sizes, bucketed 1, 2, 3-4, 5-8, 9-16, 17+.
  static constexpr size_t kLogGroupBuckets = 6;
  std::array<uint64_t, kLogGroupBuckets> log_group_size_hist{};

  // Batched-surface visibility: how much traffic arrives through the
  // batch API and how well composites (ShardedStore) group it. A wire
  // server whose pipelined windows reach the batched store paths shows up
  // here as multiget_keys >> multiget_batches with
  // multiget_shard_groups << multiget_keys (one shard visit serving many
  // keys). Plain stores leave these 0; ShardedStore fills them.
  uint64_t multiget_batches = 0;       // batched MultiGet calls served
  uint64_t multiget_keys = 0;          // keys across those calls
  uint64_t multiget_shard_groups = 0;  // per-shard group visits
  uint64_t writebatch_batches = 0;     // batched WriteBatch calls served
  uint64_t writebatch_entries = 0;     // entries across those calls
  uint64_t writebatch_shard_groups = 0;

  // Maintenance attribution: who paid for eviction/GC/consolidation.
  // foreground_maintenance_ops counts maintenance passes executed on an
  // application thread (inline mode, or a background-mode fallback) —
  // with background maintenance active it stays 0 in steady state.
  uint64_t foreground_maintenance_ops = 0;
  uint64_t background_maintenance_steps = 0;  // scheduler worker steps
  uint64_t background_pages_evicted = 0;
  uint64_t background_gc_segments = 0;
  uint64_t background_consolidations = 0;
  uint64_t background_leaf_flushes = 0;
  // Write backpressure: bounded foreground stalls taken while eviction
  // debt exceeded the stall budget, and the total time spent in them.
  uint64_t write_stalls = 0;
  uint64_t stall_micros_total = 0;

  // Three-tier hierarchy (DRAM -> compressed-SS -> SS, §7.2 / Fig. 8).
  // Occupancy (point-in-time), traffic (cumulative), and the per-tier
  // access-interval accumulators that make the five-minute-rule breakeven
  // a *measured* quantity. Stores without a tier leave these 0.
  uint64_t tier_dram_pages = 0;
  uint64_t tier_dram_bytes = 0;
  uint64_t tier_css_pages = 0;
  uint64_t tier_css_bytes = 0;          // compressed (stored) footprint
  uint64_t tier_css_hits = 0;           // loads served by compressed records
  uint64_t tier_demotions = 0;          // DRAM -> CSS
  uint64_t tier_promotions = 0;         // CSS -> DRAM
  uint64_t tier_demotion_refusals = 0;  // policy said CSS would be a loss
  uint64_t tier_css_fallthroughs = 0;   // CSS -> plain SS (budget overflow)
  uint64_t css_raw_bytes = 0;           // pre-compression bytes demoted
  uint64_t css_stored_bytes = 0;        // compressed bytes demoted
  uint64_t tier_dram_interval_nanos = 0;    // sum of DRAM touch gaps
  uint64_t tier_dram_interval_samples = 0;
  uint64_t tier_css_interval_nanos = 0;     // sum of CSS reheat gaps
  uint64_t tier_css_interval_samples = 0;
  uint64_t background_pages_demoted = 0;
  uint64_t background_pages_promoted = 0;
  // Five-minute-rule breakeven T_i (Eq. 6): the modeled value at the
  // paper's §4.1 constants, and the measured value with the mean demoted
  // page size observed from running code. Likewise the Fig. 8 CSS-vs-SS
  // crossover at the modeled vs the measured compression ratio. Per-store
  // quantities: operator+= adopts the first non-zero value (shards share
  // parameters; recompute from the additive accumulators for exactness).
  double modeled_t_i_seconds = 0;
  double measured_t_i_seconds = 0;
  double modeled_css_breakeven_ops = 0;
  double measured_css_breakeven_ops = 0;

  // Measured compression ratio across all demotions (1.0 before any).
  double MeasuredCompressionRatio() const {
    return css_raw_bytes == 0 ? 1.0
                              : static_cast<double>(css_stored_bytes) /
                                    static_cast<double>(css_raw_bytes);
  }
  // Mean measured inter-access gap per tier, seconds (0 with no samples).
  double MeanDramIntervalSeconds() const {
    return tier_dram_interval_samples == 0
               ? 0.0
               : static_cast<double>(tier_dram_interval_nanos) * 1e-9 /
                     static_cast<double>(tier_dram_interval_samples);
  }
  double MeanCssIntervalSeconds() const {
    return tier_css_interval_samples == 0
               ? 0.0
               : static_cast<double>(tier_css_interval_nanos) * 1e-9 /
                     static_cast<double>(tier_css_interval_samples);
  }

  // Fraction of classified ops that missed (the paper's F). 0 when the
  // store classified nothing.
  double MissFraction() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(misses) / total;
  }

  KvStoreStats& operator+=(const KvStoreStats& other);

  // One-line "kv: reads=... writes=..." rendering; the canonical body of
  // DebugString().
  std::string ToString() const;
};

// The library's public key-value abstraction. Implemented by
// CachingStore (Bw-tree over LLAMA over the simulated SSD — the paper's
// data caching system), MemoryStore (MassTree — the paper's main
// memory system), and ShardedStore (hash-partitioned composition of
// either, the concurrent execution substrate). Workload generators and
// benches target this interface so all systems run identical workloads.
class KvStore {
 public:
  virtual ~KvStore() = default;

  virtual Status Put(const Slice& key, const Slice& value) = 0;
  virtual Result<std::string> Get(const Slice& key) = 0;
  // Out-param read: copies the value into *value_out, whose capacity
  // survives across calls — a read-heavy loop pays one memcpy per hit
  // instead of a fresh heap allocation per Result<std::string>. The
  // default adapts the Result overload; hot-path stores override it.
  virtual Status Get(const Slice& key, std::string* value_out);
  virtual Status Delete(const Slice& key) = 0;
  virtual Status Scan(
      const Slice& start, size_t limit,
      std::vector<std::pair<std::string, std::string>>* out) = 0;

  // Batched point lookups, the canonical batch read surface: fills
  // out->statuses[i]/out->values[i] for keys[i], reusing the result's
  // value buffers across calls (no per-key allocation in steady state).
  // The returned Status is out->FirstError(): Ok unless some key hit a
  // real error — NotFound is reported per key, not as a call failure.
  // The default loops over the out-param Get(); ShardedStore overrides
  // it to group keys per shard (one shard visit per touched shard
  // instead of one per key).
  virtual Status MultiGet(std::span<const std::string> keys,
                          const ReadOptions& options, BatchReadResult* out);
  Status MultiGet(std::span<const std::string> keys, BatchReadResult* out) {
    return MultiGet(keys, ReadOptions(), out);
  }

  // Lowest-level batched read surface: each op names a key and the
  // caller-owned value/status slots it fills (see BatchGetOp). MultiGet
  // routes through this. Index-backed stores override it with the
  // miss-interleaved batch probe (Bw-tree MultiGetBatch / MassTree
  // LookupBatch) so a group of point reads overlaps its descent cache
  // misses instead of serializing them; the default loops the
  // out-param Get(). NotFound is a per-op status, never a call failure.
  virtual void BatchGet(BatchGetOp* ops, size_t count);

  // Batched upserts, the canonical batch write surface: one status per
  // entry in input order via *out (nothing is swallowed after the first
  // failure — that was the old contract's flaw). Returns
  // out->FirstError() for callers that only need the old single-status
  // view. The default loops over Put(); ShardedStore groups entries per
  // shard and merges per-shard outcomes back into input order.
  virtual Status WriteBatch(std::span<const KvEntry> entries,
                            const WriteOptions& options,
                            BatchWriteResult* out);
  Status WriteBatch(std::span<const KvEntry> entries, BatchWriteResult* out) {
    return WriteBatch(entries, WriteOptions(), out);
  }

  // True when Get/MultiGet may be called concurrently with any other
  // operation on this store without external locking. CachingStore's
  // read path is latch-free end to end (Bw-tree mapping table, lock-free
  // cache touches, epoch-protected memory), so it returns true;
  // compositions like ShardedStore use this to skip their per-shard
  // latch on reads.
  virtual bool ConcurrentSafe() const { return false; }

  // Resident DRAM footprint of the store (data + index + bookkeeping).
  virtual uint64_t MemoryFootprintBytes() const = 0;

  // Structured counters for reports and cost-model calibration.
  virtual KvStoreStats Stats() const = 0;

  // Health of each independent failure domain, in stable shard order.
  // Single-shard stores report one entry (their Stats().health);
  // compositions like ShardedStore report one per shard so a serving
  // layer can tell "one shard lost its log device" from "everything is
  // down" and degrade write availability per key subset.
  virtual std::vector<HealthStatus> PerShardHealth() const {
    return {Stats().health};
  }

  // Human-readable counters for reports and debug dumps. The base
  // rendering is Stats().ToString(); implementations append component
  // detail (tree/device/cache lines). Display-only by contract: it is
  // not a format — parse nothing out of it, consume Stats() instead.
  // (The old StatsString() name, which callers had started parsing, is
  // gone; this replacement makes the display-only contract part of the
  // name.)
  virtual std::string DebugString() const { return Stats().ToString(); }

  // Gives the store a chance to run maintenance (eviction, GC, epoch
  // reclamation). Called periodically by workload runners.
  virtual void Maintain() {}

  // Debug hook into the analysis layer (src/analysis/): runs every
  // structural invariant checker the implementation supports and returns
  // the violations found — empty means healthy. Assumes the store is
  // quiescent; meant for tests and debug sweeps, never the hot path. The
  // base implementation has no structure to check.
  virtual std::vector<analysis::Violation> CheckInvariants() { return {}; }
};

}  // namespace costperf::core

#endif  // COSTPERF_CORE_KV_STORE_H_
