#include "core/kv_store.h"

#include <cstdio>

namespace costperf::core {

KvStoreStats& KvStoreStats::operator+=(const KvStoreStats& other) {
  reads += other.reads;
  writes += other.writes;
  hits += other.hits;
  misses += other.misses;
  io_reads += other.io_reads;
  io_writes += other.io_writes;
  bytes_read += other.bytes_read;
  bytes_written += other.bytes_written;
  memory_bytes += other.memory_bytes;
  io_retries += other.io_retries;
  // Aggregate health: degraded if any contributor is degraded.
  if (other.health == HealthStatus::kDegraded) health = HealthStatus::kDegraded;
  return *this;
}

std::string KvStoreStats::ToString() const {
  char buf[320];
  snprintf(buf, sizeof(buf),
           "kv: reads=%llu writes=%llu hits=%llu misses=%llu (F=%.3f) "
           "io_reads=%llu io_writes=%llu bytes_read=%llu bytes_written=%llu "
           "memory_bytes=%llu io_retries=%llu health=%s",
           (unsigned long long)reads, (unsigned long long)writes,
           (unsigned long long)hits, (unsigned long long)misses,
           MissFraction(), (unsigned long long)io_reads,
           (unsigned long long)io_writes, (unsigned long long)bytes_read,
           (unsigned long long)bytes_written,
           (unsigned long long)memory_bytes,
           (unsigned long long)io_retries, HealthStatusName(health));
  return buf;
}

std::vector<Result<std::string>> KvStore::MultiGet(
    std::span<const std::string> keys) {
  std::vector<Result<std::string>> out;
  out.reserve(keys.size());
  for (const std::string& key : keys) out.push_back(Get(Slice(key)));
  return out;
}

Status KvStore::WriteBatch(
    const std::vector<std::pair<std::string, std::string>>& entries) {
  Status first_error = Status::Ok();
  for (const auto& [key, value] : entries) {
    Status s = Put(Slice(key), Slice(value));
    if (!s.ok() && first_error.ok()) first_error = s;
  }
  return first_error;
}

}  // namespace costperf::core
