#include "core/kv_store.h"

#include <cstdio>

namespace costperf::core {

KvStoreStats& KvStoreStats::operator+=(const KvStoreStats& other) {
  reads += other.reads;
  writes += other.writes;
  hits += other.hits;
  misses += other.misses;
  io_reads += other.io_reads;
  io_writes += other.io_writes;
  bytes_read += other.bytes_read;
  bytes_written += other.bytes_written;
  memory_bytes += other.memory_bytes;
  io_retries += other.io_retries;
  cache_touches += other.cache_touches;
  cache_touches_sampled += other.cache_touches_sampled;
  epoch_reclaim_batches += other.epoch_reclaim_batches;
  epoch_reclaimed_items += other.epoch_reclaimed_items;
  log_append_groups += other.log_append_groups;
  for (size_t i = 0; i < log_group_size_hist.size(); ++i) {
    log_group_size_hist[i] += other.log_group_size_hist[i];
  }
  multiget_batches += other.multiget_batches;
  multiget_keys += other.multiget_keys;
  multiget_shard_groups += other.multiget_shard_groups;
  writebatch_batches += other.writebatch_batches;
  writebatch_entries += other.writebatch_entries;
  writebatch_shard_groups += other.writebatch_shard_groups;
  foreground_maintenance_ops += other.foreground_maintenance_ops;
  background_maintenance_steps += other.background_maintenance_steps;
  background_pages_evicted += other.background_pages_evicted;
  background_gc_segments += other.background_gc_segments;
  background_consolidations += other.background_consolidations;
  background_leaf_flushes += other.background_leaf_flushes;
  write_stalls += other.write_stalls;
  stall_micros_total += other.stall_micros_total;
  tier_dram_pages += other.tier_dram_pages;
  tier_dram_bytes += other.tier_dram_bytes;
  tier_css_pages += other.tier_css_pages;
  tier_css_bytes += other.tier_css_bytes;
  tier_css_hits += other.tier_css_hits;
  tier_demotions += other.tier_demotions;
  tier_promotions += other.tier_promotions;
  tier_demotion_refusals += other.tier_demotion_refusals;
  tier_css_fallthroughs += other.tier_css_fallthroughs;
  css_raw_bytes += other.css_raw_bytes;
  css_stored_bytes += other.css_stored_bytes;
  tier_dram_interval_nanos += other.tier_dram_interval_nanos;
  tier_dram_interval_samples += other.tier_dram_interval_samples;
  tier_css_interval_nanos += other.tier_css_interval_nanos;
  tier_css_interval_samples += other.tier_css_interval_samples;
  background_pages_demoted += other.background_pages_demoted;
  background_pages_promoted += other.background_pages_promoted;
  // Breakeven figures are per-store, not additive: adopt the first
  // non-zero contributor (shards share cost parameters; an exact
  // aggregate can be recomputed from the additive accumulators).
  if (modeled_t_i_seconds == 0) modeled_t_i_seconds = other.modeled_t_i_seconds;
  if (measured_t_i_seconds == 0) {
    measured_t_i_seconds = other.measured_t_i_seconds;
  }
  if (modeled_css_breakeven_ops == 0) {
    modeled_css_breakeven_ops = other.modeled_css_breakeven_ops;
  }
  if (measured_css_breakeven_ops == 0) {
    measured_css_breakeven_ops = other.measured_css_breakeven_ops;
  }
  // Aggregate health: degraded if any contributor is degraded.
  if (other.health == HealthStatus::kDegraded) health = HealthStatus::kDegraded;
  return *this;
}

std::string KvStoreStats::ToString() const {
  char buf[320];
  snprintf(buf, sizeof(buf),
           "kv: reads=%llu writes=%llu hits=%llu misses=%llu (F=%.3f) "
           "io_reads=%llu io_writes=%llu bytes_read=%llu bytes_written=%llu "
           "memory_bytes=%llu io_retries=%llu health=%s",
           (unsigned long long)reads, (unsigned long long)writes,
           (unsigned long long)hits, (unsigned long long)misses,
           MissFraction(), (unsigned long long)io_reads,
           (unsigned long long)io_writes, (unsigned long long)bytes_read,
           (unsigned long long)bytes_written,
           (unsigned long long)memory_bytes,
           (unsigned long long)io_retries, HealthStatusName(health));
  char contention[320];
  snprintf(contention, sizeof(contention),
           "\ncontention: cache_touches=%llu (sampled=%llu) "
           "epoch_reclaims=%llu reclaimed=%llu log_groups=%llu "
           "group_hist=[1:%llu 2:%llu 3-4:%llu 5-8:%llu 9-16:%llu 17+:%llu]",
           (unsigned long long)cache_touches,
           (unsigned long long)cache_touches_sampled,
           (unsigned long long)epoch_reclaim_batches,
           (unsigned long long)epoch_reclaimed_items,
           (unsigned long long)log_append_groups,
           (unsigned long long)log_group_size_hist[0],
           (unsigned long long)log_group_size_hist[1],
           (unsigned long long)log_group_size_hist[2],
           (unsigned long long)log_group_size_hist[3],
           (unsigned long long)log_group_size_hist[4],
           (unsigned long long)log_group_size_hist[5]);
  char batch[256];
  snprintf(batch, sizeof(batch),
           "\nbatch: multiget_batches=%llu multiget_keys=%llu "
           "multiget_shard_groups=%llu writebatch_batches=%llu "
           "writebatch_entries=%llu writebatch_shard_groups=%llu",
           (unsigned long long)multiget_batches,
           (unsigned long long)multiget_keys,
           (unsigned long long)multiget_shard_groups,
           (unsigned long long)writebatch_batches,
           (unsigned long long)writebatch_entries,
           (unsigned long long)writebatch_shard_groups);
  char maintenance[320];
  snprintf(maintenance, sizeof(maintenance),
           "\nmaintenance: foreground_ops=%llu background_steps=%llu "
           "bg_evicted=%llu bg_gc_segments=%llu bg_consolidations=%llu "
           "bg_leaf_flushes=%llu write_stalls=%llu stall_micros=%llu",
           (unsigned long long)foreground_maintenance_ops,
           (unsigned long long)background_maintenance_steps,
           (unsigned long long)background_pages_evicted,
           (unsigned long long)background_gc_segments,
           (unsigned long long)background_consolidations,
           (unsigned long long)background_leaf_flushes,
           (unsigned long long)write_stalls,
           (unsigned long long)stall_micros_total);
  std::string out = std::string(buf) + contention + batch + maintenance;
  // Tier line only when a tier has ever been active — the common
  // two-level configuration keeps the dump compact.
  if (tier_css_pages != 0 || tier_demotions != 0 || tier_css_hits != 0 ||
      tier_demotion_refusals != 0) {
    char tier[512];
    snprintf(tier, sizeof(tier),
             "\ntier: dram=%llu pages/%llu B css=%llu pages/%llu B "
             "css_hits=%llu demotions=%llu promotions=%llu refusals=%llu "
             "fallthroughs=%llu ratio=%.3f dram_interval=%.3fs "
             "css_interval=%.3fs T_i=%.1fs (modeled %.1fs) "
             "css_breakeven=%.1f ops/s (modeled %.1f)",
             (unsigned long long)tier_dram_pages,
             (unsigned long long)tier_dram_bytes,
             (unsigned long long)tier_css_pages,
             (unsigned long long)tier_css_bytes,
             (unsigned long long)tier_css_hits,
             (unsigned long long)tier_demotions,
             (unsigned long long)tier_promotions,
             (unsigned long long)tier_demotion_refusals,
             (unsigned long long)tier_css_fallthroughs,
             MeasuredCompressionRatio(), MeanDramIntervalSeconds(),
             MeanCssIntervalSeconds(), measured_t_i_seconds,
             modeled_t_i_seconds, measured_css_breakeven_ops,
             modeled_css_breakeven_ops);
    out += tier;
  }
  return out;
}

Status KvStore::Get(const Slice& key, std::string* value_out) {
  Result<std::string> r = Get(key);
  if (!r.ok()) return r.status();
  *value_out = std::move(*r);
  return Status::Ok();
}

void KvStore::BatchGet(BatchGetOp* ops, size_t count) {
  for (size_t i = 0; i < count; ++i) {
    *ops[i].status = Get(ops[i].key, ops[i].value);
  }
}

Status KvStore::MultiGet(std::span<const std::string> keys,
                         const ReadOptions& options, BatchReadResult* out) {
  out->Reset(keys.size());
  // Route through BatchGet so a store that overrides only the batch
  // probe (CachingStore, MemoryStore) serves MultiGet through it too.
  // Scratch is per thread: the op array is rebuilt each call but its
  // capacity survives, so a steady-state batch loop does not allocate.
  thread_local std::vector<BatchGetOp> ops;
  ops.resize(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    ops[i].key = Slice(keys[i]);
    ops[i].value = &out->values[i];
    ops[i].status = &out->statuses[i];
  }
  BatchGet(ops.data(), ops.size());
  if (options.max_value_bytes != 0) {
    for (size_t i = 0; i < keys.size(); ++i) {
      if (out->statuses[i].ok() &&
          out->values[i].size() > options.max_value_bytes) {
        out->statuses[i] =
            Status::ResourceExhausted("value exceeds max_value_bytes");
      }
    }
  }
  return out->FirstError();
}

Status KvStore::WriteBatch(std::span<const KvEntry> entries,
                           const WriteOptions& options,
                           BatchWriteResult* out) {
  out->Reset(entries.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    Status s = Put(Slice(entries[i].first), Slice(entries[i].second));
    const bool failed = !s.ok();
    if (s.ok()) ++out->ok_count;
    out->statuses[i] = std::move(s);
    if (failed && options.fail_fast) {
      for (size_t j = i + 1; j < entries.size(); ++j) {
        out->statuses[j] = Status::Aborted("not attempted (fail_fast)");
      }
      break;
    }
  }
  return out->FirstError();
}

}  // namespace costperf::core
