#ifndef COSTPERF_CORE_CURSOR_H_
#define COSTPERF_CORE_CURSOR_H_

#include <string>
#include <utility>
#include <vector>

#include "core/kv_store.h"

namespace costperf::core {

// Forward iteration over any KvStore, implemented as batched range scans
// so it works identically over the caching store (paging in leaves as it
// goes) and the memory store. Snapshot semantics are per batch: records
// inserted behind the cursor are not revisited, records ahead may or may
// not appear — the usual contract of cursors over live stores.
class Cursor {
 public:
  // Starts positioned at the first key >= start.
  explicit Cursor(KvStore* store, const Slice& start = Slice(),
                  size_t batch_size = 128)
      : store_(store), batch_size_(batch_size ? batch_size : 1) {
    next_start_ = start.ToString();
    Refill();
  }

  bool Valid() const { return pos_ < batch_.size(); }
  const std::string& key() const { return batch_[pos_].first; }
  const std::string& value() const { return batch_[pos_].second; }

  void Next() {
    if (!Valid()) return;
    ++pos_;
    if (pos_ >= batch_.size() && !exhausted_) Refill();
  }

  // Repositions at the first key >= target.
  void Seek(const Slice& target) {
    next_start_ = target.ToString();
    exhausted_ = false;
    Refill();
  }

  // Status of the last scan (IoError etc. surface here).
  const Status& status() const { return status_; }

 private:
  void Refill() {
    batch_.clear();
    pos_ = 0;
    if (exhausted_) return;
    status_ = store_->Scan(Slice(next_start_), batch_size_, &batch_);
    if (!status_.ok() || batch_.empty()) {
      exhausted_ = true;
      batch_.clear();
      return;
    }
    if (batch_.size() < batch_size_) {
      exhausted_ = true;
    } else {
      // Continue strictly after the last key of this batch.
      next_start_ = batch_.back().first + '\0';
    }
  }

  KvStore* store_;
  size_t batch_size_;
  std::vector<std::pair<std::string, std::string>> batch_;
  size_t pos_ = 0;
  std::string next_start_;
  bool exhausted_ = false;
  Status status_;
};

}  // namespace costperf::core

#endif  // COSTPERF_CORE_CURSOR_H_
