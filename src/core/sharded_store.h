#ifndef COSTPERF_CORE_SHARDED_STORE_H_
#define COSTPERF_CORE_SHARDED_STORE_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "core/caching_store.h"
#include "core/kv_store.h"
#include "core/memory_store.h"

namespace costperf::core {

// Hash-partitions the key space across N inner stores and serializes
// access to each shard with its own mutex. This is the repo's concurrent
// execution substrate: inner stores need no cross-thread guarantees of
// their own (shard-per-thread isolation) while T workload threads drive
// the composite — parallelism comes from threads landing on different
// shards, exactly the sharding deployment the paper's ops/CPU-second
// framing assumes when it scales per-core numbers to a multi-core box.
//
// Keys are placed by FNV-1a over the key bytes, so placement is stable
// across runs and processes; Scan() merges the per-shard sorted runs back
// into one globally ordered result.
class ShardedStore : public KvStore {
 public:
  // Builds shard i by calling factory(i). The factory runs on the
  // constructing thread.
  using ShardFactory = std::function<std::unique_ptr<KvStore>(size_t)>;
  ShardedStore(size_t shard_count, const ShardFactory& factory);

  // Takes ownership of pre-built shards (e.g. CachingStores reattached to
  // surviving devices during recovery).
  explicit ShardedStore(std::vector<std::unique_ptr<KvStore>> shards);

  // N MassTree shards.
  static std::unique_ptr<ShardedStore> OfMemory(size_t shard_count);
  // N Bw-tree/LLAMA shards, each built from `per_shard` (so budget and
  // device capacity in the options are per shard, not totals). When
  // per_shard.background.workers > 0 and no external scheduler is given,
  // the composite owns ONE shared MaintenanceScheduler with that many
  // workers and registers every shard with it — shards do not each spin
  // up private worker threads.
  static std::unique_ptr<ShardedStore> OfCaching(
      size_t shard_count, const CachingStoreOptions& per_shard);

  Status Put(const Slice& key, const Slice& value) override;
  Result<std::string> Get(const Slice& key) override;
  Status Get(const Slice& key, std::string* value_out) override;
  Status Delete(const Slice& key) override;
  // Cross-shard scan: collects up to `limit` records from every shard and
  // merges the sorted runs, so results are globally key-ordered despite
  // hash placement.
  Status Scan(const Slice& start, size_t limit,
              std::vector<std::pair<std::string, std::string>>* out) override;

  // Grouped batch ops: keys/entries are bucketed by owning shard and each
  // touched shard is visited exactly once (one latch acquisition — or one
  // latch-free reader pass — per shard instead of one per key). Results
  // land at their input positions, so order is preserved by construction,
  // and per-shard outcomes merge back in input order. The grouping scratch
  // is thread-local: the steady-state batched path allocates nothing.
  //
  // Reads group at the BatchGet level: each shard receives a contiguous
  // run of scatter ops (value/status slots still pointing at the caller's
  // buffers) and serves it with its own batch probe — the Bw-tree /
  // MassTree miss-interleaved descent for index-backed shards. MultiGet
  // is inherited from KvStore, which routes through BatchGet.
  void BatchGet(BatchGetOp* ops, size_t count) override;
  Status WriteBatch(std::span<const KvEntry> entries,
                    const WriteOptions& options,
                    BatchWriteResult* out) override;
  // Keep the non-virtual convenience overloads visible alongside the
  // WriteBatch override.
  using KvStore::WriteBatch;

  // The composite is safe for concurrent callers regardless of the inner
  // store: every inner-store call happens under its shard's latch (or via
  // the `reader` alias when the inner store is itself concurrent-safe).
  bool ConcurrentSafe() const override { return true; }

  uint64_t MemoryFootprintBytes() const override;
  // Aggregated across shards, plus this composite's own batch-grouping
  // counters (multiget_batches/keys/shard_groups, writebatch_*).
  KvStoreStats Stats() const override;
  std::string DebugString() const override;
  // Per-shard maintenance, each shard under its own lock.
  void Maintain() override;
  // Union of every shard's violations, each entity prefixed "shard i".
  std::vector<analysis::Violation> CheckInvariants() override;

  // Health of each shard (shard i's Stats().health). A degraded shard
  // only loses write availability for its own key subset; Stats().health
  // on the composite is degraded when any shard is.
  std::vector<HealthStatus> PerShardHealth() const override;

  size_t shard_count() const { return shards_.size(); }
  // Which shard owns `key` (stable FNV-1a placement).
  size_t ShardIndexOf(const Slice& key) const;

  // Direct shard access for tests and recovery orchestration (e.g.
  // Checkpoint/Recover on CachingStore shards). Not synchronized — use
  // only when no workload threads are running, or via WithShard.
  KvStore* shard(size_t i) NO_THREAD_SAFETY_ANALYSIS {
    return shards_[i]->store.get();
  }

  // Runs fn(i, shard) under shard i's lock.
  void WithShard(size_t i, const std::function<void(KvStore*)>& fn);

  // The composite-owned background scheduler (OfCaching with
  // background.workers > 0); null otherwise.
  maintenance::MaintenanceScheduler* maintenance_scheduler() {
    return scheduler_.get();
  }

 private:
  struct Shard {
    mutable Mutex mu;
    // PT_GUARDED_BY: calling through the inner store requires the shard
    // latch; holding the unique_ptr handle itself does not.
    std::unique_ptr<KvStore> store PT_GUARDED_BY(mu);
    // Latch-free read alias: equals store.get() when the inner store
    // reported ConcurrentSafe() at construction (Get/MultiGet then skip
    // the shard latch entirely), nullptr otherwise. Immutable after
    // construction, hence unguarded.
    KvStore* reader = nullptr;
  };

  // Fills shard->reader from the inner store's ConcurrentSafe() verdict.
  static void InitReader(Shard* shard);

  // Batch-grouping visibility (surfaced via Stats()): relaxed counters on
  // the batched paths — how many batch calls arrived, how many keys they
  // carried, and how many per-shard group visits served them.
  std::atomic<uint64_t> multiget_batches_{0};
  std::atomic<uint64_t> multiget_keys_{0};
  std::atomic<uint64_t> multiget_groups_{0};
  std::atomic<uint64_t> writebatch_batches_{0};
  std::atomic<uint64_t> writebatch_entries_{0};
  std::atomic<uint64_t> writebatch_groups_{0};

  // Declared before shards_ so it is destroyed AFTER them: shard
  // destructors Deregister from this scheduler, which must still exist.
  std::unique_ptr<maintenance::MaintenanceScheduler> scheduler_;
  std::vector<std::unique_ptr<Shard>> shards_;
  // shard_count - 1 when the count is a power of two (h & mask == h % n
  // for unsigned h, so placement is unchanged — just without the 64-bit
  // division on every op), 0 otherwise.
  uint64_t shard_mask_ = 0;
};

}  // namespace costperf::core

#endif  // COSTPERF_CORE_SHARDED_STORE_H_
