#include "core/memory_store.h"

#include <cstdio>

namespace costperf::core {

void MemoryStore::BatchGet(BatchGetOp* ops, size_t count) {
  // core::BatchGetOp and MassTree::LookupOp are the same shared type
  // (common/batch_op.h): the op array goes straight to the interleaved
  // probe machine, no per-op translation.
  tree_->LookupBatch(ops, count);
}

KvStoreStats MemoryStore::Stats() const {
  auto t = tree_->stats();
  KvStoreStats s;
  s.reads = t.gets + t.scans;
  s.writes = t.puts + t.deletes;
  // Everything is resident: every classified op is an MM hit, and the
  // store performs no device I/O by construction.
  s.hits = s.reads + s.writes;
  s.misses = 0;
  s.memory_bytes = tree_->MemoryFootprintBytes();
  return s;
}

std::string MemoryStore::DebugString() const {
  auto s = tree_->stats();
  char buf[512];
  snprintf(buf, sizeof(buf),
           "masstree: gets=%llu puts=%llu deletes=%llu retries=%llu "
           "border_splits=%llu interior_splits=%llu layers=%llu size=%llu "
           "footprint=%llu",
           (unsigned long long)s.gets, (unsigned long long)s.puts,
           (unsigned long long)s.deletes, (unsigned long long)s.read_retries,
           (unsigned long long)s.border_splits,
           (unsigned long long)s.interior_splits,
           (unsigned long long)s.layers_created,
           (unsigned long long)tree_->size(),
           (unsigned long long)tree_->MemoryFootprintBytes());
  return Stats().ToString() + "\n" + buf;
}

}  // namespace costperf::core
