#include "core/caching_store.h"

#include <chrono>
#include <cstdio>

#include "analysis/bwtree_validator.h"
#include "analysis/log_store_auditor.h"
#include "analysis/mapping_table_auditor.h"
#include "costmodel/five_minute_rule.h"

namespace costperf::core {

CachingStore::CachingStore(CachingStoreOptions options)
    : options_(options) {
  if (options_.clock != nullptr) options_.device.clock = options_.clock;
  storage::SsdDevice* device = options_.external_device;
  if (device == nullptr) {
    device_ = std::make_unique<storage::SsdDevice>(options_.device);
    device = device_.get();
  }
  attached_device_ = device;
  log_ = std::make_unique<llama::LogStructuredStore>(device, options_.log);
  llama::CacheOptions cache_opts;
  cache_opts.memory_budget_bytes = options_.memory_budget_bytes == 0
                                       ? ~0ull
                                       : options_.memory_budget_bytes;
  cache_opts.policy = options_.eviction_policy;
  cache_opts.breakeven_interval_seconds =
      options_.breakeven_interval_seconds;
  cache_opts.clock = options_.clock;
  cache_opts.touch_sample = options_.cache_touch_sample;
  cache_opts.shards = options_.cache_shards;
  cache_ = std::make_unique<llama::CacheManager>(cache_opts);
  cache_->set_css_budget(options_.tier.css_budget_bytes);

  bwtree::BwTreeOptions tree_opts = options_.tree;
  tree_opts.log_store = log_.get();
  tree_opts.cache = cache_.get();
  tree_ = std::make_unique<bwtree::BwTree>(tree_opts);

  const uint64_t interval = options_.maintenance_interval_ops;
  if (interval != 0 && (interval & (interval - 1)) == 0) {
    maintenance_mask_ = interval - 1;
  }

  effective_budget_ = options_.memory_budget_bytes == 0
                          ? ~0ull
                          : options_.memory_budget_bytes;
  const auto& bg = options_.background;
  if (bg.scheduler != nullptr) {
    scheduler_ = bg.scheduler;
  } else if (bg.workers > 0) {
    maintenance::MaintenanceScheduler::Options sched_opts;
    sched_opts.workers = bg.workers;
    sched_opts.quota = bg.quota;
    owned_scheduler_ =
        std::make_unique<maintenance::MaintenanceScheduler>(sched_opts);
    scheduler_ = owned_scheduler_.get();
  }
  if (scheduler_ != nullptr) {
    if (effective_budget_ != ~0ull) {
      if (bg.cache_fill_trigger > 0) {
        fill_trigger_bytes_ = static_cast<uint64_t>(
            static_cast<double>(effective_budget_) * bg.cache_fill_trigger);
      }
      if (bg.stall_trigger > 0) {
        stall_limit_bytes_ = static_cast<uint64_t>(
            static_cast<double>(effective_budget_) * bg.stall_trigger);
      }
    }
    maint_handle_ = scheduler_->Register(this);
  }
}

CachingStore::~CachingStore() {
  // Deregister blocks until any in-flight step finishes, so no worker
  // touches tree_/log_/cache_ once member destruction begins.
  if (scheduler_ != nullptr) scheduler_->Deregister(maint_handle_);
}

Status CachingStore::Put(const Slice& key, const Slice& value) {
  if (Status w = CheckWritable(); !w.ok()) return w;
  MaybeStallForDebt();
  Status s = tree_->Put(key, value);
  NoteWriteOutcome(s, /*reset_on_ok=*/false);
  MaybeMaintain();
  return s;
}

Result<std::string> CachingStore::Get(const Slice& key) {
  auto r = tree_->Get(key);
  MaybeMaintain();
  return r;
}

Status CachingStore::Get(const Slice& key, std::string* value_out) {
  Status s = tree_->Get(key, value_out);
  MaybeMaintain();
  return s;
}

void CachingStore::BatchGet(BatchGetOp* ops, size_t count) {
  // core::BatchGetOp and BwTree::BatchGetOp are the same shared type
  // (common/batch_op.h): the op array goes straight to the interleaved
  // probe machine, no per-op translation.
  tree_->MultiGetBatch(ops, count);
  // Same maintenance pacing as N single Gets — one counter jump, every
  // crossed boundary replayed — without N shared-atomic RMWs per batch.
  NoteBatchOps(count);
}

Status CachingStore::Delete(const Slice& key) {
  if (Status w = CheckWritable(); !w.ok()) return w;
  MaybeStallForDebt();
  Status s = tree_->Delete(key);
  NoteWriteOutcome(s, /*reset_on_ok=*/false);
  MaybeMaintain();
  return s;
}

Status CachingStore::CheckWritable() {
  if (!degraded_.load(std::memory_order_acquire)) return Status::Ok();
  MutexLock lock(&health_mu_);
  return last_write_error_;
}

void CachingStore::NoteWriteOutcome(const Status& s, bool reset_on_ok) {
  if (options_.degrade_after_write_failures == 0) return;
  if (s.ok()) {
    // A flush-path success means the device took a write; the streak of
    // consecutive failures is over. Once degraded, only an explicit
    // ResetHealth() heals — a late success must not silently un-degrade.
    if (reset_on_ok && !degraded_.load(std::memory_order_relaxed)) {
      write_failure_streak_.store(0, std::memory_order_relaxed);
    }
    return;
  }
  // Only media write errors count. Aborted (contention), Corruption
  // (surfaced to the caller, a different failure class), etc. do not.
  if (!s.IsIoError()) return;
  uint32_t streak =
      write_failure_streak_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (streak >= options_.degrade_after_write_failures &&
      !degraded_.exchange(true, std::memory_order_acq_rel)) {
    MutexLock lock(&health_mu_);
    last_write_error_ = s;
  }
}

HealthStatus CachingStore::health() const {
  return degraded_.load(std::memory_order_acquire) ? HealthStatus::kDegraded
                                                   : HealthStatus::kHealthy;
}

void CachingStore::ResetHealth() {
  {
    MutexLock lock(&health_mu_);
    last_write_error_ = Status::Ok();
  }
  write_failure_streak_.store(0, std::memory_order_relaxed);
  degraded_.store(false, std::memory_order_release);
}

Status CachingStore::Scan(
    const Slice& start, size_t limit,
    std::vector<std::pair<std::string, std::string>>* out) {
  Status s = tree_->Scan(start, limit, out);
  MaybeMaintain();
  return s;
}

void CachingStore::MaybeMaintain() {
  const uint64_t n = op_counter_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (scheduler_ != nullptr) {
    MaybeSignalPressure(n);
    return;
  }
  if (IntervalCrossed(n)) {
    foreground_maintenance_ops_.fetch_add(1, std::memory_order_relaxed);
    Maintain();
  }
}

void CachingStore::NoteBatchOps(uint64_t count) {
  if (count == 0) return;
  const uint64_t after =
      op_counter_.fetch_add(count, std::memory_order_relaxed) + count;
  const uint64_t before = after - count;
  const uint64_t crossings = IntervalCrossings(before, after);
  if (scheduler_ != nullptr) {
    bool signal = crossings != 0;
    // Same 1-in-32 sampling as the single-op path: run the threshold
    // checks when the jump passed a multiple of 32.
    if ((before >> 5) != (after >> 5)) signal = PressureThresholds() || signal;
    if (signal) scheduler_->Signal(maint_handle_);
    return;
  }
  // Inline mode: one Maintain() per boundary crossed, the same pacing N
  // single ops would have produced.
  for (uint64_t k = 0; k < crossings; ++k) {
    foreground_maintenance_ops_.fetch_add(1, std::memory_order_relaxed);
    Maintain();
  }
}

bool CachingStore::IntervalCrossed(uint64_t n) const {
  if (maintenance_mask_ != 0) {  // power-of-two interval: no division
    return (n & maintenance_mask_) == 0;
  }
  const uint64_t interval = options_.maintenance_interval_ops;
  return interval != 0 && n % interval == 0;
}

uint64_t CachingStore::IntervalCrossings(uint64_t before, uint64_t after) const {
  const uint64_t interval = maintenance_mask_ != 0
                                ? maintenance_mask_ + 1
                                : options_.maintenance_interval_ops;
  if (interval == 0) return 0;
  return after / interval - before / interval;
}

void CachingStore::MaybeSignalPressure(uint64_t n) {
  // maintenance_interval_ops keeps its meaning as a pacing floor: even
  // without threshold pressure the store gets a step per interval (leaf
  // merging, cost-based proactive eviction).
  bool signal = IntervalCrossed(n);
  // Threshold checks every 32 ops: resident_bytes() sums the cache's
  // per-shard atomics, too heavy for every op.
  if ((n & 31) == 0) signal = PressureThresholds() || signal;
  if (signal) scheduler_->Signal(maint_handle_);
}

bool CachingStore::PressureThresholds() {
  bool signal = false;
  const uint64_t resident = cache_->resident_bytes();
  if (resident > fill_trigger_bytes_) signal = true;
  if (stall_limit_bytes_ != 0) {
    const bool over = resident > stall_limit_bytes_;
    if (over) {
      stall_flag_.store(true, std::memory_order_relaxed);
      signal = true;
    } else if (stall_flag_.exchange(false, std::memory_order_relaxed)) {
      MutexLock lock(&stall_mu_);
      stall_cv_.notify_all();
    }
  }
  if (options_.background.log_dead_trigger > 0 &&
      log_->DeadSpaceFraction() >= options_.background.log_dead_trigger) {
    signal = true;
  }
  return signal;
}

void CachingStore::MaybeStallForDebt() {
  if (!stall_flag_.load(std::memory_order_relaxed)) return;
  if (degraded_.load(std::memory_order_acquire)) return;
  // The flag is refreshed only every 32 ops; confirm the debt is real
  // before parking this writer.
  if (cache_->resident_bytes() <= stall_limit_bytes_) return;
  scheduler_->Signal(maint_handle_);
  const auto start = std::chrono::steady_clock::now();
  const auto deadline =
      start +
      std::chrono::microseconds(options_.background.stall_max_wait_micros);
  {
    MutexLock lock(&stall_mu_);
    while (stall_flag_.load(std::memory_order_relaxed) &&
           !degraded_.load(std::memory_order_acquire)) {
      if (stall_cv_.wait_until(stall_mu_, deadline) ==
          std::cv_status::timeout) {
        break;
      }
    }
  }
  const auto waited = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - start);
  write_stalls_.fetch_add(1, std::memory_order_relaxed);
  stall_micros_total_.fetch_add(static_cast<uint64_t>(waited.count()),
                                std::memory_order_relaxed);
}

bool CachingStore::MaintenanceStep(const maintenance::MaintenanceQuota& quota) {
  // An explicit Maintain()/Checkpoint caller may hold the gate; retry
  // the step rather than waiting on a worker thread.
  if (!maintenance_mu_.TryLock()) return true;
  background_steps_.fetch_add(1, std::memory_order_relaxed);
  bool more = false;
  if (degraded_.load(std::memory_order_acquire)) {
    // No flash writes into failing media; epoch reclamation is pure
    // memory and still safe.
    tree_->ReclaimMemory();
  } else {
    more |= BackgroundEvictStep(quota);
    more |= BackgroundTierStep(quota);
    more |= BackgroundGcStep(quota);
    BackgroundHousekeepingStep(quota);
    tree_->ReclaimMemory();
  }
  maintenance_mu_.Unlock();
  ReleaseStallWaiters();
  return more;
}

bool CachingStore::BackgroundEvictStep(
    const maintenance::MaintenanceQuota& quota) {
  const uint64_t resident = cache_->resident_bytes();
  const uint64_t want =
      resident > effective_budget_ ? resident - effective_budget_ : 0;
  if (want == 0 &&
      options_.eviction_policy != llama::EvictionPolicy::kCostBased) {
    return false;
  }
  auto victims = cache_->PickVictims(want, quota.evict_pages);
  bool progressed = false;
  uint32_t demoted = 0;
  for (auto pid : victims) {
    // Demote-before-evict: a cold victim goes to the compressed tier
    // when the policy says it pays; demotion IS its eviction (one CAS
    // moved the page out of DRAM), so plain eviction is skipped.
    if (demoted < quota.compress_pages && TryDemote(pid)) {
      ++demoted;
      progressed = true;
      if (degraded_.load(std::memory_order_acquire)) return false;
      continue;
    }
    Status s = tree_->EvictPage(pid, options_.evict_mode);
    NoteWriteOutcome(s, /*reset_on_ok=*/true);
    if (s.ok()) {
      progressed = true;
      bg_pages_evicted_.fetch_add(1, std::memory_order_relaxed);
    }
    if (degraded_.load(std::memory_order_acquire)) return false;
  }
  // Requeue only when this step evicted something AND the debt remains:
  // a step that made no progress (all victims pinned/aborted) must not
  // spin the worker — the next op-path signal retries it.
  return progressed && cache_->resident_bytes() > effective_budget_;
}

bool CachingStore::TryDemote(mapping::PageId pid) {
  const auto& tier = options_.tier;
  if (tier.css_budget_bytes == 0) return false;
  if (cache_->GetTier(pid) != llama::CacheTier::kDram) return false;
  const double idle = cache_->IdleSeconds(pid);
  if (idle < tier.demote_idle_seconds) return false;
  if (cache_->css_resident_bytes() >= tier.css_budget_bytes) return false;
  bwtree::CssPolicy policy;
  policy.min_ratio = tier.min_ratio;
  policy.max_reheats = tier.max_reheats;
  bwtree::DemoteResult res;
  Status s = tree_->DemotePage(pid, policy, &res);
  NoteWriteOutcome(s, /*reset_on_ok=*/res.demoted);
  if (s.ok() && res.demoted) {
    bg_pages_demoted_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  // Refused (FailedPrecondition), raced (Aborted), or failed: the caller
  // falls back to plain eviction for this victim.
  return false;
}

bool CachingStore::BackgroundTierStep(
    const maintenance::MaintenanceQuota& quota) {
  const auto& tier = options_.tier;
  if (tier.css_budget_bytes == 0) return false;

  // Proactive demotion, independent of memory pressure: DRAM rental on a
  // page idle past the demotion floor is already a loss (§4.2), and the
  // compressed record shrinks its media footprint on top (Fig. 8).
  for (auto pid : cache_->PickDemotionCandidates(quota.compress_pages,
                                                 tier.demote_idle_seconds)) {
    if (cache_->css_resident_bytes() >= tier.css_budget_bytes) break;
    TryDemote(pid);
    if (degraded_.load(std::memory_order_acquire)) return false;
  }

  // CSS overflow: the coldest compressed pages fall through to plain SS.
  // Their durable record already exists — dropping the cache entry is
  // the entire eviction (the mapping word is already a flash address).
  bool more = false;
  const uint64_t css = cache_->css_resident_bytes();
  if (css > tier.css_budget_bytes) {
    for (auto pid : cache_->PickCssVictims(css - tier.css_budget_bytes,
                                           quota.evict_pages)) {
      cache_->Erase(pid);
      bg_css_fallthroughs_.fetch_add(1, std::memory_order_relaxed);
    }
    more = cache_->css_resident_bytes() > tier.css_budget_bytes;
  }

  // Background promotion: while DRAM has clear headroom, pay the
  // decompression for the hottest CSS pages ahead of demand.
  if (tier.promote_fill_floor > 0 && effective_budget_ != ~0ull) {
    const uint64_t floor_bytes = static_cast<uint64_t>(
        static_cast<double>(effective_budget_) * tier.promote_fill_floor);
    if (cache_->resident_bytes() < floor_bytes) {
      for (auto pid : cache_->PickPromotionCandidates(quota.promote_pages)) {
        if (tree_->LoadPage(pid).ok()) {
          bg_pages_promoted_.fetch_add(1, std::memory_order_relaxed);
        }
        if (cache_->resident_bytes() >= floor_bytes) break;
      }
    }
  }
  return more;
}

bool CachingStore::BackgroundGcStep(
    const maintenance::MaintenanceQuota& quota) {
  const double trigger = options_.background.log_dead_trigger;
  if (trigger <= 0) return false;
  // gc_live_threshold keeps its inline-mode meaning (victim
  // eligibility); the dead-space trigger decides *when* to collect.
  const double victim_threshold =
      options_.gc_live_threshold > 0 ? options_.gc_live_threshold : 0.9;
  for (uint32_t i = 0; i < quota.gc_segments; ++i) {
    if (log_->DeadSpaceFraction() < trigger) return false;
    Status s = CollectOneSegment(victim_threshold);
    // NotFound: dead space is spread across segments above the victim
    // threshold — nothing eligible, stop rather than respin.
    if (!s.ok()) {
      if (s.IsIoError()) NoteWriteOutcome(s, /*reset_on_ok=*/false);
      return false;
    }
    bg_gc_segments_.fetch_add(1, std::memory_order_relaxed);
  }
  return log_->DeadSpaceFraction() >= trigger;
}

void CachingStore::BackgroundHousekeepingStep(
    const maintenance::MaintenanceQuota& quota) {
  auto hk = tree_->HousekeepingScan(&housekeeping_cursor_,
                                    quota.consolidate_scan_pages,
                                    quota.flush_dirty_leaves,
                                    options_.flush_mode);
  bg_consolidations_.fetch_add(hk.consolidated, std::memory_order_relaxed);
  bg_leaf_flushes_.fetch_add(hk.flushed, std::memory_order_relaxed);
  if (hk.flush_error) NoteWriteOutcome(hk.first_error, /*reset_on_ok=*/false);
  if (options_.merge_fill_target > 0) {
    tree_->MergeUnderfullLeaves(options_.merge_fill_target);
  }
}

void CachingStore::ReleaseStallWaiters() {
  if (stall_limit_bytes_ == 0) return;
  if (cache_->resident_bytes() > stall_limit_bytes_) return;
  stall_flag_.store(false, std::memory_order_relaxed);
  // Lock/notify under stall_mu_ so a writer that just observed the flag
  // set cannot park between our store and the notify.
  MutexLock lock(&stall_mu_);
  stall_cv_.notify_all();
}

void CachingStore::EnforceBudget() {
  // Cost-based policy evicts past-breakeven pages even under budget
  // (their DRAM rental no longer pays for itself); all policies evict to
  // budget.
  uint64_t want = 0;
  uint64_t resident = cache_->resident_bytes();
  if (resident > effective_budget_) want = resident - effective_budget_;
  if (want != 0 ||
      options_.eviction_policy == llama::EvictionPolicy::kCostBased) {
    auto victims = cache_->PickVictims(want);
    for (auto pid : victims) {
      // Demote-before-evict: a cold victim whose measured economics pay
      // moves to the compressed tier (its demotion IS its eviction); the
      // rest take the plain SS path.
      if (TryDemote(pid)) continue;
      NoteWriteOutcome(tree_->EvictPage(pid, options_.evict_mode),
                       /*reset_on_ok=*/true);
      if (degraded_.load(std::memory_order_acquire)) return;
    }
  }
  // Inline tier upkeep for stores running without the background
  // scheduler: the same proactive-demotion and overflow passes
  // BackgroundTierStep runs, under the default per-step quota. Runs even
  // under budget — demotion is about idle pages' rent, not memory debt.
  if (options_.tier.css_budget_bytes != 0) {
    (void)BackgroundTierStep(maintenance::MaintenanceQuota{});
  }
}

void CachingStore::Maintain() {
  // Try-lock: if another thread is already inside maintenance, skip this
  // round rather than stacking a second eviction/GC pass on top of it.
  if (!maintenance_mu_.TryLock()) return;
  // While degraded, skip everything that issues flash writes — flushing
  // into a failing device would only spin the failure streak; reclaiming
  // epochs is still safe (pure memory).
  if (degraded_.load(std::memory_order_acquire)) {
    tree_->ReclaimMemory();
    maintenance_mu_.Unlock();
    return;
  }
  EnforceBudget();
  if (options_.merge_fill_target > 0) {
    tree_->MergeUnderfullLeaves(options_.merge_fill_target);
  }
  if (options_.gc_live_threshold > 0) {
    (void)CollectOneSegment(options_.gc_live_threshold);
  }
  tree_->ReclaimMemory();
  maintenance_mu_.Unlock();
}

std::vector<analysis::Violation> CachingStore::CheckInvariants() {
  std::vector<analysis::Violation> out;
  analysis::BwTreeValidator tree_checker(tree_.get());
  analysis::MappingTableAuditor table_checker(tree_.get(), cache_.get());
  analysis::LogStoreAuditor log_checker(log_.get());
  for (analysis::InvariantChecker* checker :
       {static_cast<analysis::InvariantChecker*>(&tree_checker),
        static_cast<analysis::InvariantChecker*>(&table_checker),
        static_cast<analysis::InvariantChecker*>(&log_checker)}) {
    auto found = checker->Check();
    out.insert(out.end(), found.begin(), found.end());
  }
  return out;
}

Status CachingStore::Checkpoint() {
  if (Status w = CheckWritable(); !w.ok()) return w;
  Status s = tree_->FlushAll();
  if (s.ok()) s = log_->Flush();
  NoteWriteOutcome(s, /*reset_on_ok=*/true);
  return s;
}

Status CachingStore::Recover() { return tree_->RecoverFromStore(); }

Status CachingStore::EvictAll() {
  Status s = Checkpoint();
  if (!s.ok()) return s;
  for (auto pid : tree_->LeafPageIds()) {
    for (int attempt = 0; attempt < 100; ++attempt) {
      s = tree_->EvictPage(pid, bwtree::EvictMode::kFullEviction);
      if (s.ok()) break;
      if (!s.IsAborted()) return s;
    }
  }
  tree_->ReclaimMemory();
  return Status::Ok();
}

Status CachingStore::RunGc(double live_threshold) {
  for (int round = 0; round < 1024; ++round) {
    Status s = CollectOneSegment(live_threshold);
    if (s.IsNotFound()) return Status::Ok();
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

Status CachingStore::CollectOneSegment(double victim_threshold) {
  // Find the victim the same way CollectColdest does, but prepare the
  // segment first: pages with multi-record chains or memory-only current
  // images get rewritten elsewhere, so every record GcIsLive calls dead
  // has a durable replacement before the trim.
  uint64_t victim = UINT64_MAX;
  double victim_live = 2.0;
  for (const auto& seg : log_->segments()) {
    if (!seg.sealed) continue;
    if (seg.live_fraction() < victim_live) {
      victim_live = seg.live_fraction();
      victim = seg.id;
    }
  }
  if (victim == UINT64_MAX || victim_live > victim_threshold) {
    return Status::NotFound("no segment at or below the live threshold");
  }
  Status s =
      tree_->PrepareSegmentForGc(victim, log_->options().segment_bytes);
  if (!s.ok()) return s;
  auto gc = log_->CollectSegment(
      victim,
      [this](mapping::PageId pid, llama::FlashAddress a) {
        return tree_->GcIsLive(pid, a);
      },
      [this](mapping::PageId pid, llama::FlashAddress o,
             llama::FlashAddress n) { return tree_->GcInstall(pid, o, n); });
  return gc.status();
}

uint64_t CachingStore::MemoryFootprintBytes() const {
  return tree_->MemoryFootprintBytes();
}

KvStoreStats CachingStore::Stats() const {
  auto t = tree_->stats();
  auto d = attached_device_->stats();
  KvStoreStats s;
  s.reads = t.gets + t.scans;
  s.writes = t.puts + t.deletes;
  s.hits = t.mm_ops;
  s.misses = t.ss_ops;
  s.io_reads = d.reads;
  s.io_writes = d.writes;
  s.bytes_read = d.bytes_read;
  s.bytes_written = d.bytes_written;
  s.memory_bytes = tree_->MemoryFootprintBytes();
  s.io_retries = t.io_retries;
  s.health = health();
  const auto c = cache_->stats();
  s.cache_touches = c.touches;
  s.cache_touches_sampled = c.touches_sampled;
  EpochManager* epochs = tree_->epochs();
  s.epoch_reclaim_batches = epochs->reclaim_batches();
  s.epoch_reclaimed_items = epochs->reclaimed_items();
  s.foreground_maintenance_ops =
      foreground_maintenance_ops_.load(std::memory_order_relaxed);
  s.background_maintenance_steps =
      background_steps_.load(std::memory_order_relaxed);
  s.background_pages_evicted =
      bg_pages_evicted_.load(std::memory_order_relaxed);
  s.background_gc_segments = bg_gc_segments_.load(std::memory_order_relaxed);
  s.background_consolidations =
      bg_consolidations_.load(std::memory_order_relaxed);
  s.background_leaf_flushes =
      bg_leaf_flushes_.load(std::memory_order_relaxed);
  s.write_stalls = write_stalls_.load(std::memory_order_relaxed);
  s.stall_micros_total = stall_micros_total_.load(std::memory_order_relaxed);
  const auto l = log_->stats();
  s.log_append_groups = l.append_groups;
  static_assert(KvStoreStats::kLogGroupBuckets ==
                llama::LogStoreStats::kGroupSizeBuckets);
  for (size_t i = 0; i < l.group_size_hist.size(); ++i) {
    s.log_group_size_hist[i] = l.group_size_hist[i];
  }
  // Three-tier hierarchy: occupancy and traffic from the cache and tree,
  // then the Fig. 8 / Eq. 6 breakevens — once at the paper's modeled
  // constants, and again at the page size and compression ratio this
  // store actually measured while demoting.
  s.tier_dram_pages = c.resident_pages;
  s.tier_dram_bytes = c.resident_bytes;
  s.tier_css_pages = c.css_pages;
  s.tier_css_bytes = c.css_bytes;
  s.tier_css_hits = t.css_hits;
  s.tier_demotions = t.css_demotions;
  s.tier_promotions = c.promotions;
  s.tier_demotion_refusals = t.css_demotion_refusals;
  s.tier_css_fallthroughs =
      bg_css_fallthroughs_.load(std::memory_order_relaxed);
  s.css_raw_bytes = t.css_raw_bytes_demoted;
  s.css_stored_bytes = t.css_stored_bytes_demoted;
  s.tier_dram_interval_nanos = c.dram_interval_nanos;
  s.tier_dram_interval_samples = c.dram_interval_samples;
  s.tier_css_interval_nanos = c.css_interval_nanos;
  s.tier_css_interval_samples = c.css_interval_samples;
  s.background_pages_demoted =
      bg_pages_demoted_.load(std::memory_order_relaxed);
  s.background_pages_promoted =
      bg_pages_promoted_.load(std::memory_order_relaxed);
  const costmodel::CostParams modeled = costmodel::CostParams::PaperDefaults();
  s.modeled_t_i_seconds = costmodel::BreakevenIntervalSeconds(modeled);
  s.modeled_css_breakeven_ops =
      costmodel::CssSsBreakevenOpsPerSec(modeled, costmodel::CompressionParams{});
  if (t.css_demotions > 0 && t.css_raw_bytes_demoted > 0) {
    costmodel::CostParams measured = modeled;
    measured.page_size_bytes = static_cast<double>(t.css_raw_bytes_demoted) /
                               static_cast<double>(t.css_demotions);
    costmodel::CompressionParams ratio;
    ratio.compression_ratio =
        static_cast<double>(t.css_stored_bytes_demoted) /
        static_cast<double>(t.css_raw_bytes_demoted);
    s.measured_t_i_seconds = costmodel::BreakevenIntervalSeconds(measured);
    s.measured_css_breakeven_ops =
        costmodel::CssSsBreakevenOpsPerSec(measured, ratio);
  }
  return s;
}

std::string CachingStore::DebugString() const {
  auto t = tree_->stats();
  auto d = attached_device_->stats();
  auto l = log_->stats();
  auto c = cache_->stats();
  char buf[1024];
  snprintf(buf, sizeof(buf),
           "bwtree: gets=%llu puts=%llu mm=%llu ss=%llu rc_hits=%llu "
           "blind=%llu loads=%llu consolidations=%llu splits=%llu "
           "full_flushes=%llu delta_flushes=%llu evictions=%llu/%llu\n"
           "device: reads=%llu writes=%llu bytes_read=%llu "
           "bytes_written=%llu occupied=%llu\n"
           "log: appended=%llu segments=%llu buffer_reads=%llu gc_runs=%llu\n"
           "cache: resident_bytes=%llu pages=%llu evictions=%llu",
           (unsigned long long)t.gets, (unsigned long long)t.puts,
           (unsigned long long)t.mm_ops, (unsigned long long)t.ss_ops,
           (unsigned long long)t.record_cache_hits,
           (unsigned long long)t.blind_updates,
           (unsigned long long)t.page_loads,
           (unsigned long long)t.consolidations,
           (unsigned long long)t.leaf_splits,
           (unsigned long long)t.full_flushes,
           (unsigned long long)t.delta_flushes,
           (unsigned long long)t.full_evictions,
           (unsigned long long)t.record_cache_evictions,
           (unsigned long long)d.reads, (unsigned long long)d.writes,
           (unsigned long long)d.bytes_read,
           (unsigned long long)d.bytes_written,
           (unsigned long long)d.occupied_bytes,
           (unsigned long long)l.records_appended,
           (unsigned long long)l.segments_written,
           (unsigned long long)l.buffer_reads,
           (unsigned long long)l.gc_runs,
           (unsigned long long)c.resident_bytes,
           (unsigned long long)c.resident_pages,
           (unsigned long long)c.evictions);
  // Structured summary first, component detail after — callers that want
  // numbers should use Stats() and never parse this.
  return Stats().ToString() + "\n" + buf;
}

}  // namespace costperf::core
