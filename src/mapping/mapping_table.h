#ifndef COSTPERF_MAPPING_MAPPING_TABLE_H_
#define COSTPERF_MAPPING_MAPPING_TABLE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/hot_path.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace costperf::mapping {

// Logical page identifier. The indirection through PageId is what lets the
// Bw-tree update pages latch-free (CAS on the mapping entry) and lets
// LLAMA relocate pages on every flush without touching the index
// (paper Fig. 4).
using PageId = uint64_t;
inline constexpr PageId kInvalidPageId = ~0ull;

// A fixed-capacity table of 64-bit words, one per logical page. The word's
// encoding (memory pointer vs flash address) is owned by the layer above;
// the table provides allocation, latch-free reads, and CAS installs.
//
// Thread-safe. Get/Cas/Set are lock-free; Allocate/Free take a short latch
// on the free list only.
//
// Epoch contract: the table stores opaque 64-bit words, so reading a word
// is always safe — it is *decoding the word to a Node\* and dereferencing
// it* that requires a live EpochGuard on the owning structure's
// EpochManager (a concurrent consolidation may have retired the chain).
// That contract is declared where the dereference happens: the Bw-tree's
// descent/SMO helpers are REQUIRES_EPOCH(epochs_) (bwtree.h), and Free()
// below must only be called for ids already unreachable (retired through
// the epoch).
class MappingTable {
 public:
  explicit MappingTable(size_t capacity = 1 << 20);

  MappingTable(const MappingTable&) = delete;
  MappingTable& operator=(const MappingTable&) = delete;

  // Allocates a fresh page id (reusing freed ids first) and initializes
  // its entry to `initial`. Returns kInvalidPageId when full.
  PageId Allocate(uint64_t initial = 0);

  // Returns the id to the free list. The caller is responsible for making
  // sure no thread can still reach the id (epoch protection).
  void Free(PageId id);

  // Recovery-path allocation of a *specific* id (the id a page had before
  // restart). Ids skipped over go to the free list. Returns false if the
  // id is out of capacity or already allocated. Not for concurrent use.
  bool AllocateExact(PageId id, uint64_t value);

  // Drops every entry and the free list (recovery bootstrap). Not for
  // concurrent use.
  void Reset();

  COSTPERF_HOT uint64_t Get(PageId id) const {
    return entries_[id].load(std::memory_order_acquire);
  }

  // Best-effort prefetch of the entry's cache line, for the PID→node hop:
  // batch probes issue this one quantum before Get() so the entry load
  // (and nothing it decodes to — that still needs an epoch) is likely a
  // hit. Reads nothing, so no epoch or bounds contract beyond id being a
  // valid index.
  COSTPERF_HOT void Prefetch(PageId id) const {
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(&entries_[id], /*rw=*/0, /*locality=*/3);
#endif
  }

  // Single CAS — the Bw-tree's only write primitive on the index.
  COSTPERF_HOT bool Cas(PageId id, uint64_t expected, uint64_t desired) {
    return entries_[id].compare_exchange_strong(
        expected, desired, std::memory_order_acq_rel);
  }

  // Unconditional store; for initialization and recovery only.
  void Set(PageId id, uint64_t value) {
    entries_[id].store(value, std::memory_order_release);
  }

  size_t capacity() const { return capacity_; }
  // Number of ids currently live (allocated and not freed).
  size_t live_pages() const;
  // Copy of the free list, for the analysis layer: a tree-reachable id on
  // this list is a dangling reference, a missing unreachable id a leak.
  std::vector<PageId> FreeListSnapshot() const EXCLUDES(free_mu_);
  // High-water mark of allocations (for iteration during recovery/GC).
  PageId high_water() const {
    return next_unused_.load(std::memory_order_acquire);
  }

 private:
  size_t capacity_;
  std::unique_ptr<std::atomic<uint64_t>[]> entries_;
  std::atomic<PageId> next_unused_;

  mutable Mutex free_mu_;
  std::vector<PageId> free_list_ GUARDED_BY(free_mu_);
};

}  // namespace costperf::mapping

#endif  // COSTPERF_MAPPING_MAPPING_TABLE_H_
