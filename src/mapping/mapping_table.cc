#include "mapping/mapping_table.h"

#include <algorithm>

namespace costperf::mapping {

MappingTable::MappingTable(size_t capacity)
    : capacity_(capacity),
      entries_(new std::atomic<uint64_t>[capacity]),
      next_unused_(0) {
  for (size_t i = 0; i < capacity_; ++i) {
    entries_[i].store(0, std::memory_order_relaxed);
  }
}

PageId MappingTable::Allocate(uint64_t initial) {
  {
    MutexLock lk(&free_mu_);
    if (!free_list_.empty()) {
      PageId id = free_list_.back();
      free_list_.pop_back();
      entries_[id].store(initial, std::memory_order_release);
      return id;
    }
  }
  PageId id = next_unused_.fetch_add(1, std::memory_order_acq_rel);
  if (id >= capacity_) {
    next_unused_.fetch_sub(1, std::memory_order_acq_rel);
    return kInvalidPageId;
  }
  entries_[id].store(initial, std::memory_order_release);
  return id;
}

void MappingTable::Free(PageId id) {
  entries_[id].store(0, std::memory_order_release);
  MutexLock lk(&free_mu_);
  free_list_.push_back(id);
}

bool MappingTable::AllocateExact(PageId id, uint64_t value) {
  if (id >= capacity_) return false;
  MutexLock lk(&free_mu_);
  PageId next = next_unused_.load(std::memory_order_acquire);
  if (id >= next) {
    for (PageId skipped = next; skipped < id; ++skipped) {
      free_list_.push_back(skipped);
    }
    next_unused_.store(id + 1, std::memory_order_release);
  } else {
    auto it = std::find(free_list_.begin(), free_list_.end(), id);
    if (it == free_list_.end()) return false;  // already allocated
    free_list_.erase(it);
  }
  entries_[id].store(value, std::memory_order_release);
  return true;
}

void MappingTable::Reset() {
  MutexLock lk(&free_mu_);
  PageId hw = next_unused_.load(std::memory_order_acquire);
  for (PageId i = 0; i < hw; ++i) {
    entries_[i].store(0, std::memory_order_relaxed);
  }
  free_list_.clear();
  next_unused_.store(0, std::memory_order_release);
}

size_t MappingTable::live_pages() const {
  MutexLock lk(&free_mu_);
  return next_unused_.load(std::memory_order_acquire) - free_list_.size();
}

std::vector<PageId> MappingTable::FreeListSnapshot() const {
  MutexLock lk(&free_mu_);
  return free_list_;
}

}  // namespace costperf::mapping
