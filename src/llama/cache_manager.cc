#include "llama/cache_manager.h"

namespace costperf::llama {

std::string EvictionPolicyName(EvictionPolicy p) {
  switch (p) {
    case EvictionPolicy::kLru:
      return "lru";
    case EvictionPolicy::kSecondChance:
      return "second-chance";
    case EvictionPolicy::kCostBased:
      return "cost-based";
  }
  return "?";
}

CacheManager::CacheManager(CacheOptions options)
    : options_(options),
      clock_(options.clock ? options.clock : RealClock::Global()) {}

void CacheManager::Insert(mapping::PageId pid, uint64_t bytes) {
  MutexLock lk(&mu_);
  auto it = entries_.find(pid);
  if (it != entries_.end()) {
    // Re-insert of a resident page: treat as resize + touch.
    resident_bytes_ += bytes - it->second.bytes;
    it->second.bytes = bytes;
    it->second.last_access_nanos = clock_->NowNanos();
    it->second.referenced = true;
    lru_.splice(lru_.end(), lru_, it->second.lru_pos);
    return;
  }
  Entry e;
  e.bytes = bytes;
  e.last_access_nanos = clock_->NowNanos();
  e.referenced = true;
  lru_.push_back(pid);
  e.lru_pos = std::prev(lru_.end());
  entries_.emplace(pid, e);
  resident_bytes_ += bytes;
  stats_.insertions++;
}

void CacheManager::Touch(mapping::PageId pid) {
  MutexLock lk(&mu_);
  auto it = entries_.find(pid);
  if (it == entries_.end()) return;
  it->second.last_access_nanos = clock_->NowNanos();
  it->second.referenced = true;
  lru_.splice(lru_.end(), lru_, it->second.lru_pos);
  stats_.touches++;
}

void CacheManager::Resize(mapping::PageId pid, uint64_t new_bytes) {
  MutexLock lk(&mu_);
  auto it = entries_.find(pid);
  if (it == entries_.end()) return;
  resident_bytes_ += new_bytes - it->second.bytes;
  it->second.bytes = new_bytes;
}

void CacheManager::Erase(mapping::PageId pid) {
  MutexLock lk(&mu_);
  auto it = entries_.find(pid);
  if (it == entries_.end()) return;
  resident_bytes_ -= it->second.bytes;
  lru_.erase(it->second.lru_pos);
  entries_.erase(it);
  stats_.evictions++;
}

bool CacheManager::Contains(mapping::PageId pid) const {
  MutexLock lk(&mu_);
  return entries_.count(pid) > 0;
}

uint64_t CacheManager::resident_bytes() const {
  MutexLock lk(&mu_);
  return resident_bytes_;
}

bool CacheManager::OverBudget() const {
  MutexLock lk(&mu_);
  return resident_bytes_ > options_.memory_budget_bytes;
}

double CacheManager::IdleSeconds(mapping::PageId pid) const {
  MutexLock lk(&mu_);
  auto it = entries_.find(pid);
  if (it == entries_.end()) return -1.0;
  return static_cast<double>(clock_->NowNanos() -
                             it->second.last_access_nanos) *
         1e-9;
}

std::vector<mapping::PageId> CacheManager::PickVictims(uint64_t want_bytes) {
  MutexLock lk(&mu_);
  std::vector<mapping::PageId> victims;
  uint64_t picked = 0;
  const uint64_t now = clock_->NowNanos();
  const uint64_t breakeven_nanos =
      static_cast<uint64_t>(options_.breakeven_interval_seconds * 1e9);

  switch (options_.policy) {
    case EvictionPolicy::kLru: {
      for (auto it = lru_.begin(); it != lru_.end() && picked < want_bytes;
           ++it) {
        victims.push_back(*it);
        picked += entries_[*it].bytes;
      }
      break;
    }
    case EvictionPolicy::kSecondChance: {
      // Sweep from LRU end, clearing reference bits; a page is victimized
      // only when found unreferenced. Two full sweeps bound the scan.
      size_t scanned = 0;
      const size_t max_scan = 2 * lru_.size();
      auto it = lru_.begin();
      while (it != lru_.end() && picked < want_bytes &&
             scanned++ < max_scan) {
        Entry& e = entries_[*it];
        if (e.referenced) {
          e.referenced = false;
          // Give it a second chance: rotate to MRU side.
          auto cur = it++;
          lru_.splice(lru_.end(), lru_, cur);
          if (it == lru_.end()) it = lru_.begin();
        } else {
          victims.push_back(*it);
          picked += e.bytes;
          ++it;
        }
      }
      break;
    }
    case EvictionPolicy::kCostBased: {
      // First pass: every page idle past breakeven is worth evicting
      // regardless of budget — its DRAM rental now exceeds the cost of an
      // SS operation on its next access (paper §4.2).
      for (auto it = lru_.begin(); it != lru_.end(); ++it) {
        const Entry& e = entries_[*it];
        if (now - e.last_access_nanos > breakeven_nanos) {
          victims.push_back(*it);
          picked += e.bytes;
        }
        // lru_ is ordered by recency, so once we hit a page younger than
        // breakeven every later page is younger too.
        else {
          break;
        }
      }
      // Second pass: budget is a hard constraint; top up from LRU.
      if (picked < want_bytes) {
        for (auto it = lru_.begin(); it != lru_.end() && picked < want_bytes;
             ++it) {
          const Entry& e = entries_[*it];
          if (now - e.last_access_nanos > breakeven_nanos) continue;  // taken
          victims.push_back(*it);
          picked += e.bytes;
        }
      }
      break;
    }
  }
  return victims;
}

std::vector<std::pair<mapping::PageId, uint64_t>>
CacheManager::ResidentEntries() const {
  MutexLock lk(&mu_);
  std::vector<std::pair<mapping::PageId, uint64_t>> out;
  out.reserve(entries_.size());
  for (const auto& [pid, e] : entries_) out.emplace_back(pid, e.bytes);
  return out;
}

CacheStats CacheManager::stats() const {
  MutexLock lk(&mu_);
  CacheStats s = stats_;
  s.resident_bytes = resident_bytes_;
  s.resident_pages = entries_.size();
  return s;
}

void CacheManager::set_memory_budget(uint64_t bytes) {
  MutexLock lk(&mu_);
  options_.memory_budget_bytes = bytes;
}

}  // namespace costperf::llama
