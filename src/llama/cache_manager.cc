#include "llama/cache_manager.h"

#include <algorithm>
#include <limits>

namespace costperf::llama {
namespace {

// splitmix64 finalizer — spreads sequential pids across shards and probe
// positions.
inline uint64_t Mix(uint64_t x) {
  x *= 0x9E3779B97F4A7C15ull;
  x ^= x >> 29;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 32;
  return x;
}

constexpr size_t kInitialTableCapacity = 64;
constexpr uint32_t kDefaultShards = 16;

size_t RoundUpPow2(size_t v) {
  size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

std::string EvictionPolicyName(EvictionPolicy p) {
  switch (p) {
    case EvictionPolicy::kLru:
      return "lru";
    case EvictionPolicy::kSecondChance:
      return "second-chance";
    case EvictionPolicy::kCostBased:
      return "cost-based";
  }
  return "?";
}

CacheManager::CacheManager(CacheOptions options)
    : options_(options),
      clock_(options.clock ? options.clock : RealClock::Global()),
      budget_(options.memory_budget_bytes) {
  const size_t n =
      RoundUpPow2(options_.shards ? options_.shards : kDefaultShards);
  shard_mask_ = n - 1;
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    auto shard = std::make_unique<Shard>();
    MutexLock lk(&shard->mu);
    shard->tables.push_back(std::make_unique<Table>(kInitialTableCapacity));
    shard->table.store(shard->tables.back().get(), std::memory_order_release);
    shards_.push_back(std::move(shard));
  }
}

CacheManager::Shard& CacheManager::ShardFor(mapping::PageId pid) const {
  return *shards_[Mix(pid) & shard_mask_];
}

CacheManager::Slot* CacheManager::FindSlot(const Shard& shard,
                                           mapping::PageId pid) const {
  Table* t = shard.table.load(std::memory_order_acquire);
  const uint64_t h = Mix(pid);
  size_t i = (h >> 16) & t->mask;
  for (size_t probes = 0; probes <= t->mask;
       ++probes, i = (i + 1) & t->mask) {
    Slot& s = t->slots[i];
    const uint64_t cur = s.pid.load(std::memory_order_acquire);
    if (cur == pid) return &s;
    if (cur == kEmptyPid) return nullptr;
    // Tombstone or another pid: keep probing.
  }
  return nullptr;
}

void CacheManager::GrowTable(Shard& shard) {
  Table* old = shard.table.load(std::memory_order_relaxed);
  auto grown = std::make_unique<Table>(old->capacity() * 2);
  Table* t = grown.get();
  for (size_t i = 0; i <= old->mask; ++i) {
    Slot& src = old->slots[i];
    const uint64_t pid = src.pid.load(std::memory_order_relaxed);
    if (pid == kEmptyPid || pid == kTombstonePid) continue;
    size_t j = (Mix(pid) >> 16) & t->mask;
    while (t->slots[j].pid.load(std::memory_order_relaxed) != kEmptyPid) {
      j = (j + 1) & t->mask;
    }
    Slot& dst = t->slots[j];
    dst.bytes.store(src.bytes.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
    dst.tick.store(src.tick.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
    dst.seq.store(src.seq.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
    dst.referenced.store(src.referenced.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
    dst.tier.store(src.tier.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
    dst.reheats.store(src.reheats.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    dst.pid.store(pid, std::memory_order_release);
  }
  // Tombstones are dropped by the rehash.
  shard.used = shard.live;
  // The old table stays alive in shard.tables: a lock-free reader may
  // still be probing it. Its entries go stale, which is benign — Touch
  // through a stale slot only loses advisory recency metadata.
  shard.tables.push_back(std::move(grown));
  shard.table.store(t, std::memory_order_release);
}

CacheManager::Slot* CacheManager::FindOrClaimSlot(Shard& shard,
                                                  mapping::PageId pid,
                                                  bool* claimed_tombstone) {
  *claimed_tombstone = false;
  Table* t = shard.table.load(std::memory_order_relaxed);
  // Keep load factor below 3/4 counting tombstones, so probes terminate.
  if ((shard.used + 1) * 4 >= t->capacity() * 3) {
    GrowTable(shard);
    t = shard.table.load(std::memory_order_relaxed);
  }
  const uint64_t h = Mix(pid);
  size_t i = (h >> 16) & t->mask;
  Slot* tombstone = nullptr;
  for (size_t probes = 0; probes <= t->mask;
       ++probes, i = (i + 1) & t->mask) {
    Slot& s = t->slots[i];
    const uint64_t cur = s.pid.load(std::memory_order_relaxed);
    if (cur == pid) return &s;
    if (cur == kTombstonePid) {
      if (tombstone == nullptr) tombstone = &s;
      continue;
    }
    if (cur == kEmptyPid) {
      if (tombstone != nullptr) {
        *claimed_tombstone = true;
        return tombstone;
      }
      return &s;
    }
  }
  // Unreachable: load factor is kept below capacity.
  *claimed_tombstone = tombstone != nullptr;
  return tombstone;
}

void CacheManager::Insert(mapping::PageId pid, uint64_t bytes) {
  Shard& shard = ShardFor(pid);
  MutexLock lk(&shard.mu);
  bool claimed_tombstone = false;
  Slot* s = FindOrClaimSlot(shard, pid, &claimed_tombstone);
  const uint64_t now = clock_->NowNanos();
  const uint64_t seq = lru_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (s->pid.load(std::memory_order_relaxed) == pid) {
    const uint64_t old = s->bytes.load(std::memory_order_relaxed);
    if (static_cast<CacheTier>(s->tier.load(std::memory_order_relaxed)) ==
        CacheTier::kCss) {
      // The page's chain just got rebuilt in memory: this Insert IS the
      // CSS -> DRAM promotion. Move its footprint between the tier
      // accounts and remember the reheat — a page that keeps coming
      // back will be refused by the next demotion pass.
      shard.css_bytes.fetch_sub(old, std::memory_order_relaxed);
      shard.css_pages.fetch_sub(1, std::memory_order_relaxed);
      shard.resident_bytes.fetch_add(bytes, std::memory_order_relaxed);
      shard.promotions.fetch_add(1, std::memory_order_relaxed);
      s->reheats.fetch_add(1, std::memory_order_relaxed);
      s->tier.store(static_cast<uint32_t>(CacheTier::kDram),
                    std::memory_order_relaxed);
    } else {
      // Re-insert of a resident page: treat as resize + touch (MRU).
      shard.resident_bytes.fetch_add(bytes - old, std::memory_order_relaxed);
    }
    s->bytes.store(bytes, std::memory_order_relaxed);
    s->tick.store(now, std::memory_order_relaxed);
    s->seq.store(seq, std::memory_order_relaxed);
    s->referenced.store(1, std::memory_order_relaxed);
    return;
  }
  s->bytes.store(bytes, std::memory_order_relaxed);
  s->tick.store(now, std::memory_order_relaxed);
  s->seq.store(seq, std::memory_order_relaxed);
  s->referenced.store(1, std::memory_order_relaxed);
  s->tier.store(static_cast<uint32_t>(CacheTier::kDram),
                std::memory_order_relaxed);
  s->reheats.store(0, std::memory_order_relaxed);
  s->pid.store(pid, std::memory_order_release);
  shard.live++;
  if (!claimed_tombstone) shard.used++;
  shard.resident_bytes.fetch_add(bytes, std::memory_order_relaxed);
  shard.insertions.fetch_add(1, std::memory_order_relaxed);
}

int CacheManager::TouchCellIndex() {
  static std::atomic<uint32_t> next{0};
  thread_local const uint32_t idx =
      next.fetch_add(1, std::memory_order_relaxed) % kTouchCells;
  return static_cast<int>(idx);
}

namespace {
// Single-writer cell increment: relaxed load+store, no RMW.
inline void BumpCell(std::atomic<uint64_t>& c) {
  c.store(c.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
}
}  // namespace

void CacheManager::Touch(mapping::PageId pid) {
  TouchCell& cell = touch_cells_[TouchCellIndex()];
  BumpCell(cell.touches);
  if (options_.touch_sample > 1) {
    // Sampled fast path: 1-in-N touches do the full probe + recency
    // update; the rest return after counting. CLOCK tolerates the
    // thinner reference-bit stream — a hot page is touched often enough
    // that some sampled touch sets its bit before the hand comes round.
    thread_local uint32_t tls_touch_round = 0;
    if (++tls_touch_round < options_.touch_sample) {
      BumpCell(cell.sampled);
      return;
    }
    tls_touch_round = 0;
  }
  Shard& shard = ShardFor(pid);
  Slot* s = FindSlot(shard, pid);
  if (s == nullptr) return;
  const uint64_t now = clock_->NowNanos();
  const uint64_t prev = s->tick.load(std::memory_order_relaxed);
  s->tick.store(now, std::memory_order_relaxed);
  s->referenced.store(1, std::memory_order_relaxed);
  // Accumulate the inter-reference gap into this thread's cell, binned
  // by tier: the per-tier mean gap is the measured access interval the
  // five-minute-rule breakeven gets compared against. Racing touches
  // can double-count or drop a gap — advisory statistics, like ticks.
  if (prev != 0 && now > prev) {
    const bool css =
        static_cast<CacheTier>(s->tier.load(std::memory_order_relaxed)) ==
        CacheTier::kCss;
    std::atomic<uint64_t>& sum =
        css ? cell.css_interval_nanos : cell.dram_interval_nanos;
    std::atomic<uint64_t>& cnt =
        css ? cell.css_interval_samples : cell.dram_interval_samples;
    sum.store(sum.load(std::memory_order_relaxed) + (now - prev),
              std::memory_order_relaxed);
    BumpCell(cnt);
  }
}

void CacheManager::Resize(mapping::PageId pid, uint64_t new_bytes) {
  Shard& shard = ShardFor(pid);
  MutexLock lk(&shard.mu);
  Slot* s = FindSlot(shard, pid);
  if (s == nullptr) return;
  const uint64_t old = s->bytes.load(std::memory_order_relaxed);
  s->bytes.store(new_bytes, std::memory_order_relaxed);
  // Adjust whichever tier account the entry is charged against (a CSS
  // entry's footprint never changes in practice, but keep the books
  // closed regardless).
  std::atomic<uint64_t>& account =
      static_cast<CacheTier>(s->tier.load(std::memory_order_relaxed)) ==
              CacheTier::kCss
          ? shard.css_bytes
          : shard.resident_bytes;
  account.fetch_add(new_bytes - old, std::memory_order_relaxed);
}

void CacheManager::Erase(mapping::PageId pid) {
  Shard& shard = ShardFor(pid);
  MutexLock lk(&shard.mu);
  Slot* s = FindSlot(shard, pid);
  if (s == nullptr) return;
  const uint64_t bytes = s->bytes.load(std::memory_order_relaxed);
  const CacheTier tier =
      static_cast<CacheTier>(s->tier.load(std::memory_order_relaxed));
  // Tombstone keeps the probe chain intact for concurrent readers.
  s->pid.store(kTombstonePid, std::memory_order_release);
  shard.live--;
  if (tier == CacheTier::kCss) {
    shard.css_bytes.fetch_sub(bytes, std::memory_order_relaxed);
    shard.css_pages.fetch_sub(1, std::memory_order_relaxed);
  } else {
    shard.resident_bytes.fetch_sub(bytes, std::memory_order_relaxed);
  }
  shard.evictions.fetch_add(1, std::memory_order_relaxed);
}

bool CacheManager::Contains(mapping::PageId pid) const {
  return FindSlot(ShardFor(pid), pid) != nullptr;
}

uint64_t CacheManager::resident_bytes() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->resident_bytes.load(std::memory_order_relaxed);
  }
  return total;
}

bool CacheManager::OverBudget() const {
  return resident_bytes() > budget_.load(std::memory_order_relaxed);
}

double CacheManager::IdleSeconds(mapping::PageId pid) const {
  Slot* s = FindSlot(ShardFor(pid), pid);
  if (s == nullptr) return -1.0;
  return static_cast<double>(clock_->NowNanos() -
                             s->tick.load(std::memory_order_relaxed)) *
         1e-9;
}

bool CacheManager::SetTier(mapping::PageId pid, CacheTier tier,
                           uint64_t bytes) {
  Shard& shard = ShardFor(pid);
  MutexLock lk(&shard.mu);
  Slot* s = FindSlot(shard, pid);
  if (s == nullptr) return false;
  const CacheTier cur =
      static_cast<CacheTier>(s->tier.load(std::memory_order_relaxed));
  if (cur == tier) return false;
  const uint64_t old = s->bytes.load(std::memory_order_relaxed);
  if (tier == CacheTier::kCss) {
    shard.resident_bytes.fetch_sub(old, std::memory_order_relaxed);
    shard.css_bytes.fetch_add(bytes, std::memory_order_relaxed);
    shard.css_pages.fetch_add(1, std::memory_order_relaxed);
    shard.demotions.fetch_add(1, std::memory_order_relaxed);
  } else {
    shard.css_bytes.fetch_sub(old, std::memory_order_relaxed);
    shard.css_pages.fetch_sub(1, std::memory_order_relaxed);
    shard.resident_bytes.fetch_add(bytes, std::memory_order_relaxed);
    shard.promotions.fetch_add(1, std::memory_order_relaxed);
    s->reheats.fetch_add(1, std::memory_order_relaxed);
  }
  s->bytes.store(bytes, std::memory_order_relaxed);
  s->tier.store(static_cast<uint32_t>(tier), std::memory_order_relaxed);
  return true;
}

CacheTier CacheManager::GetTier(mapping::PageId pid) const {
  Slot* s = FindSlot(ShardFor(pid), pid);
  if (s == nullptr) return CacheTier::kDram;
  return static_cast<CacheTier>(s->tier.load(std::memory_order_relaxed));
}

uint32_t CacheManager::ReheatCount(mapping::PageId pid) const {
  Slot* s = FindSlot(ShardFor(pid), pid);
  if (s == nullptr) return 0;
  return s->reheats.load(std::memory_order_relaxed);
}

uint64_t CacheManager::css_resident_bytes() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->css_bytes.load(std::memory_order_relaxed);
  }
  return total;
}

void CacheManager::set_css_budget(uint64_t bytes) {
  css_budget_.store(bytes, std::memory_order_relaxed);
}

bool CacheManager::CssOverBudget() const {
  return css_resident_bytes() > css_budget_.load(std::memory_order_relaxed);
}

std::vector<CacheManager::VictimCandidate>
CacheManager::SnapshotByRecency(CacheTier tier) {
  std::vector<VictimCandidate> all;
  for (const auto& shard : shards_) {
    MutexLock lk(&shard->mu);
    Table* t = shard->table.load(std::memory_order_relaxed);
    for (size_t i = 0; i <= t->mask; ++i) {
      Slot& s = t->slots[i];
      const uint64_t pid = s.pid.load(std::memory_order_relaxed);
      if (pid == kEmptyPid || pid == kTombstonePid) continue;
      if (static_cast<CacheTier>(s.tier.load(std::memory_order_relaxed)) !=
          tier) {
        continue;
      }
      all.push_back({pid, s.bytes.load(std::memory_order_relaxed),
                     s.tick.load(std::memory_order_relaxed),
                     s.seq.load(std::memory_order_relaxed), &s.referenced});
    }
  }
  // (tick, seq) ascending = exact LRU order, coldest first: every Insert
  // and full Touch refreshes tick; seq breaks same-tick ties by
  // insertion order.
  std::sort(all.begin(), all.end(),
            [](const VictimCandidate& a, const VictimCandidate& b) {
              return a.tick != b.tick ? a.tick < b.tick : a.seq < b.seq;
            });
  return all;
}

std::vector<mapping::PageId> CacheManager::PickVictims(uint64_t want_bytes) {
  return PickVictims(want_bytes, std::numeric_limits<size_t>::max());
}

std::vector<mapping::PageId> CacheManager::PickVictims(uint64_t want_bytes,
                                                       size_t max_pages) {
  std::vector<mapping::PageId> victims;
  if (max_pages == 0) return victims;
  uint64_t picked = 0;
  const uint64_t now = clock_->NowNanos();
  const uint64_t breakeven_nanos =
      static_cast<uint64_t>(options_.breakeven_interval_seconds * 1e9);
  // Victim selection is a DRAM-tier concern: CSS entries hold no memory
  // worth reclaiming here (PickCssVictims handles CSS overflow).
  std::vector<VictimCandidate> order = SnapshotByRecency(CacheTier::kDram);

  switch (options_.policy) {
    case EvictionPolicy::kLru: {
      for (size_t i = 0; i < order.size() && picked < want_bytes &&
                         victims.size() < max_pages;
           ++i) {
        victims.push_back(order[i].pid);
        picked += order[i].bytes;
      }
      break;
    }
    case EvictionPolicy::kSecondChance: {
      // CLOCK sweep in recency order: clear reference bits in place (the
      // pointers reach the live slots); a page is victimized only when
      // found unreferenced. Two full sweeps bound the scan.
      const size_t n = order.size();
      if (n == 0) break;
      std::vector<char> taken(n, 0);
      const size_t max_scan = 2 * n;
      size_t scanned = 0;
      for (size_t i = 0; picked < want_bytes && scanned < max_scan &&
                         victims.size() < max_pages;
           i = (i + 1) % n, ++scanned) {
        if (taken[i]) continue;
        VictimCandidate& c = order[i];
        if (c.ref->load(std::memory_order_relaxed) != 0) {
          c.ref->store(0, std::memory_order_relaxed);  // second chance
        } else {
          victims.push_back(c.pid);
          picked += c.bytes;
          taken[i] = 1;
        }
      }
      break;
    }
    case EvictionPolicy::kCostBased: {
      // First pass: every page idle past breakeven is worth evicting
      // regardless of budget — its DRAM rental now exceeds the cost of an
      // SS operation on its next access (paper §4.2). The snapshot is
      // recency-ordered, so stop at the first page younger than
      // breakeven.
      size_t split = 0;
      for (; split < order.size() && victims.size() < max_pages; ++split) {
        if (now - order[split].tick > breakeven_nanos) {
          victims.push_back(order[split].pid);
          picked += order[split].bytes;
        } else {
          break;
        }
      }
      // Second pass: budget is a hard constraint; top up from LRU.
      for (size_t i = split; i < order.size() && picked < want_bytes &&
                             victims.size() < max_pages;
           ++i) {
        victims.push_back(order[i].pid);
        picked += order[i].bytes;
      }
      break;
    }
  }
  return victims;
}

std::vector<mapping::PageId> CacheManager::PickDemotionCandidates(
    size_t max_pages, double min_idle_seconds) {
  std::vector<mapping::PageId> out;
  if (max_pages == 0) return out;
  const uint64_t now = clock_->NowNanos();
  const uint64_t min_idle_nanos =
      static_cast<uint64_t>(min_idle_seconds * 1e9);
  // Coldest-first; stop at the first page younger than the idle floor —
  // everything after it in recency order is younger still.
  for (const VictimCandidate& c : SnapshotByRecency(CacheTier::kDram)) {
    if (now - c.tick < min_idle_nanos) break;
    out.push_back(c.pid);
    if (out.size() >= max_pages) break;
  }
  return out;
}

std::vector<mapping::PageId> CacheManager::PickCssVictims(
    uint64_t want_bytes, size_t max_pages) {
  std::vector<mapping::PageId> out;
  if (max_pages == 0) return out;
  uint64_t picked = 0;
  for (const VictimCandidate& c : SnapshotByRecency(CacheTier::kCss)) {
    if (picked >= want_bytes || out.size() >= max_pages) break;
    out.push_back(c.pid);
    picked += c.bytes;
  }
  return out;
}

std::vector<mapping::PageId> CacheManager::PickPromotionCandidates(
    size_t max_pages) {
  std::vector<mapping::PageId> out;
  if (max_pages == 0) return out;
  std::vector<VictimCandidate> order = SnapshotByRecency(CacheTier::kCss);
  // Hottest first: walk the coldest-first snapshot backwards.
  for (auto it = order.rbegin(); it != order.rend() && out.size() < max_pages;
       ++it) {
    out.push_back(it->pid);
  }
  return out;
}

std::vector<std::pair<mapping::PageId, uint64_t>> CacheManager::CssEntries()
    const {
  std::vector<std::pair<mapping::PageId, uint64_t>> out;
  for (const auto& shard : shards_) {
    MutexLock lk(&shard->mu);
    Table* t = shard->table.load(std::memory_order_relaxed);
    for (size_t i = 0; i <= t->mask; ++i) {
      const Slot& s = t->slots[i];
      const uint64_t pid = s.pid.load(std::memory_order_relaxed);
      if (pid == kEmptyPid || pid == kTombstonePid) continue;
      if (static_cast<CacheTier>(s.tier.load(std::memory_order_relaxed)) !=
          CacheTier::kCss) {
        continue;
      }
      out.emplace_back(pid, s.bytes.load(std::memory_order_relaxed));
    }
  }
  return out;
}

std::vector<std::pair<mapping::PageId, uint64_t>>
CacheManager::ResidentEntries() const {
  std::vector<std::pair<mapping::PageId, uint64_t>> out;
  for (const auto& shard : shards_) {
    MutexLock lk(&shard->mu);
    Table* t = shard->table.load(std::memory_order_relaxed);
    for (size_t i = 0; i <= t->mask; ++i) {
      const Slot& s = t->slots[i];
      const uint64_t pid = s.pid.load(std::memory_order_relaxed);
      if (pid == kEmptyPid || pid == kTombstonePid) continue;
      // DRAM tier only: a CSS entry's mapping word is a flash address
      // with no live chain, so auditors must not expect one.
      if (static_cast<CacheTier>(s.tier.load(std::memory_order_relaxed)) !=
          CacheTier::kDram) {
        continue;
      }
      out.emplace_back(pid, s.bytes.load(std::memory_order_relaxed));
    }
  }
  return out;
}

CacheStats CacheManager::stats() const {
  CacheStats s;
  for (const auto& shard : shards_) {
    s.insertions += shard->insertions.load(std::memory_order_relaxed);
    s.evictions += shard->evictions.load(std::memory_order_relaxed);
    s.resident_bytes += shard->resident_bytes.load(std::memory_order_relaxed);
    s.css_bytes += shard->css_bytes.load(std::memory_order_relaxed);
    s.demotions += shard->demotions.load(std::memory_order_relaxed);
    s.promotions += shard->promotions.load(std::memory_order_relaxed);
    const uint64_t css_pages =
        shard->css_pages.load(std::memory_order_relaxed);
    s.css_pages += css_pages;
    MutexLock lk(&shard->mu);
    s.resident_pages += shard->live - css_pages;  // live spans both tiers
  }
  for (const TouchCell& cell : touch_cells_) {
    s.touches += cell.touches.load(std::memory_order_relaxed);
    s.touches_sampled += cell.sampled.load(std::memory_order_relaxed);
    s.dram_interval_nanos +=
        cell.dram_interval_nanos.load(std::memory_order_relaxed);
    s.dram_interval_samples +=
        cell.dram_interval_samples.load(std::memory_order_relaxed);
    s.css_interval_nanos +=
        cell.css_interval_nanos.load(std::memory_order_relaxed);
    s.css_interval_samples +=
        cell.css_interval_samples.load(std::memory_order_relaxed);
  }
  return s;
}

void CacheManager::set_memory_budget(uint64_t bytes) {
  budget_.store(bytes, std::memory_order_relaxed);
  options_.memory_budget_bytes = bytes;
}

}  // namespace costperf::llama
