#ifndef COSTPERF_LLAMA_LOG_STORE_H_
#define COSTPERF_LLAMA_LOG_STORE_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/lock_order.h"
#include "common/mutex.h"
#include "common/slice.h"
#include "common/thread_annotations.h"
#include "common/status.h"
#include "llama/flash_address.h"
#include "mapping/mapping_table.h"
#include "storage/device.h"

namespace costperf::llama {

using mapping::PageId;

struct LogStoreOptions {
  // Segment == write buffer == GC unit. Aligned with the device's 1 MiB
  // trim granularity so collected segments actually free media.
  uint64_t segment_bytes = 1 << 20;
  bool verify_checksums = true;
};

struct LogStoreStats {
  uint64_t records_appended = 0;
  uint64_t bytes_appended = 0;       // payload + headers
  uint64_t payload_bytes_appended = 0;  // stored (on-media) payload bytes
  uint64_t segments_written = 0;
  uint64_t buffer_reads = 0;    // reads served from the open write buffer
  uint64_t device_reads = 0;
  uint64_t gc_runs = 0;
  uint64_t gc_relocated_records = 0;
  uint64_t gc_reclaimed_bytes = 0;
  uint64_t dead_bytes_marked = 0;
  // Space-accounting closure terms (consumed by analysis::LogStoreAuditor;
  // see its header for the two identities these must satisfy):
  uint64_t bytes_collected = 0;       // record bytes retired with GC'd segments
  uint64_t dead_bytes_collected = 0;  // dead marks retired with GC'd segments
  uint64_t recovered_bytes = 0;       // record bytes adopted by Recover()
  // CSS (compressed-record) accounting. `stored` is bytes on media,
  // `raw` the decompressed size the header declares. These close their
  // own auditor identity, mirroring the space-accounting closure above:
  //   css_stored_appended + css_stored_recovered
  //     == sum(segment css_stored_bytes) + css_stored_collected
  // (and the same for raw). GC relocation of a compressed record counts
  // as a fresh compressed append, exactly like bytes_appended does.
  uint64_t css_records_appended = 0;
  uint64_t css_stored_bytes_appended = 0;
  uint64_t css_raw_bytes_appended = 0;
  uint64_t css_stored_bytes_collected = 0;
  uint64_t css_raw_bytes_collected = 0;
  uint64_t css_stored_bytes_recovered = 0;
  uint64_t css_raw_bytes_recovered = 0;
  // Group-append visibility: appends reserve space under the latch and
  // encode outside it; a "group" is the run of appends whose encodes
  // overlapped (the fill counter rose from and returned to zero). With no
  // concurrency every group has size 1.
  uint64_t append_groups = 0;
  // Group-size histogram buckets: 1, 2, 3-4, 5-8, 9-16, 17+.
  static constexpr size_t kGroupSizeBuckets = 6;
  std::array<uint64_t, kGroupSizeBuckets> group_size_hist{};
};

struct SegmentInfo {
  uint64_t id = 0;
  uint64_t used_bytes = 0;
  uint64_t dead_bytes = 0;
  // Compressed-record payload bytes appended into this segment (stored =
  // on media, raw = declared decompressed size). Never decremented by
  // MarkDead: like used_bytes these retire with the segment.
  uint64_t css_stored_bytes = 0;
  uint64_t css_raw_bytes = 0;
  bool sealed = false;
  double live_fraction() const {
    return used_bytes == 0
               ? 1.0
               : 1.0 - static_cast<double>(dead_bytes) /
                           static_cast<double>(used_bytes);
  }
};

struct GcStats {
  uint64_t segment_id = 0;
  uint64_t relocated_records = 0;
  uint64_t relocated_bytes = 0;
  uint64_t reclaimed_bytes = 0;
  // Live records whose relocation could not be installed (the page moved
  // concurrently). When nonzero the victim was NOT trimmed: its durable
  // copies are still referenced, so reclaiming the media would lose them.
  uint64_t failed_installs = 0;
};

// What Recover() found on media and what it decided about it. A crash can
// tear at most the log tail, so bytes_truncated/torn_segments are expected
// after an unclean shutdown; corrupt_records_skipped > 0 means mid-log
// checksum damage (bad media, not a crash).
struct RecoveryReport {
  uint64_t segments_scanned = 0;        // segments with a valid header
  uint64_t records_adopted = 0;         // records replayed to the visitor
  uint64_t bytes_adopted = 0;           // record bytes adopted (incl. skipped)
  uint64_t bytes_truncated = 0;         // torn-tail bytes discarded
  uint64_t corrupt_records_skipped = 0; // framed records failing checksum
  uint64_t torn_segments = 0;           // segments with a torn tail/header
  std::string ToString() const;
};

// Deuteronomy-LLAMA-style log-structured store (paper §6.1, Fig. 4/5):
// variable-size page images accumulate in a large in-memory write buffer
// and reach the device in one large write per segment, shrinking both the
// number of writes and (with variable sizes) the bytes written. Every
// append relocates the page, so callers track positions via FlashAddress
// and the mapping table.
//
// Thread-safe. Appends are group-batched: each append takes the latch
// only to reserve its byte range in the open buffer, then encodes the
// header, checksum, and payload copy *outside* the latch (the buffer's
// capacity is pre-reserved at segment size, so reserved ranges are
// pointer-stable). A fill counter plus condition variable lets sealing —
// and open-buffer reads — wait for in-flight encodes, so the latch hold
// time is O(1) regardless of payload size. Reads are latch-free against
// the device and take the latch only to check the open buffer.
class LogStructuredStore {
 public:
  // `device` must outlive the store.
  LogStructuredStore(storage::SsdDevice* device, LogStoreOptions options = {});

  LogStructuredStore(const LogStructuredStore&) = delete;
  LogStructuredStore& operator=(const LogStructuredStore&) = delete;

  // Buffers one record; the returned address is final (the segment's
  // device position is fixed at creation). Seals+writes the buffer first
  // if the record does not fit.
  Result<FlashAddress> Append(PageId pid, const Slice& image);

  // Buffers an already-compressed record (the caller ran the image
  // through compression::Compressor — demotion compresses exactly once
  // and applies its ratio policy on the same call). `raw_len` is the
  // decompressed size, carried in the header so Read/Recover can bound
  // and validate decompression. The CRC covers the compressed bytes as
  // stored, so torn-tail recovery sees both record forms identically.
  Result<FlashAddress> AppendCompressed(PageId pid, const Slice& compressed,
                                        uint32_t raw_len);

  // Reads a record's payload. Serves from the open write buffer when the
  // address has not been flushed yet (no I/O — this is what makes freshly
  // written pages cheap to re-read). Verifies pid and checksum.
  // Compressed records are decompressed transparently; *was_compressed
  // (when non-null) reports which form was on media so callers can count
  // CSS-tier reads.
  Status Read(FlashAddress addr, std::string* image,
              PageId* pid_out = nullptr, bool* was_compressed = nullptr);

  // Seals the open buffer and writes it to the device (no-op if empty).
  Status Flush();

  // Declares the record at addr superseded; fuels GC victim selection.
  void MarkDead(FlashAddress addr);

  // --- Garbage collection (paper §6.1: run when load is low; delaying it
  // raises reclaimed-bytes-per-segment efficiency) ---

  // Asks whether pid's current location is still `addr` (i.e. the record
  // is live).
  using LivenessFn = std::function<bool(PageId, FlashAddress)>;
  // Atomically re-points pid from old to new location; false if the page
  // moved concurrently (the relocated copy is then marked dead).
  using InstallFn =
      std::function<bool(PageId, FlashAddress old_addr, FlashAddress new_addr)>;

  // Relocates live records out of a sealed segment, then trims it.
  Result<GcStats> CollectSegment(uint64_t segment_id, const LivenessFn& live,
                                 const InstallFn& install);

  // Collects the sealed segment with the lowest live fraction, if any is
  // below `live_threshold`. Returns NotFound if none qualifies.
  Result<GcStats> CollectColdest(const LivenessFn& live,
                                 const InstallFn& install,
                                 double live_threshold = 0.75);

  // Rebuilds segment directory and replays records after a restart. Calls
  // the visitor with each record in log order (last call per pid wins).
  // Only sealed (on-device) segments are recoverable, by construction.
  //
  // Torn-tail tolerant: each segment is adopted up to its last record with
  // a valid checksum; everything after it (a torn tail from a crash mid
  // segment-write) is truncated. A checksum-failed record *before* later
  // valid ones is skipped and marked dead — its page either has a newer
  // image (adopted) or is genuinely lost (surfaced by the caller, not by
  // failing the whole recovery). The report (also kept, see
  // last_recovery_report) says exactly what was kept and dropped.
  Status Recover(
      const std::function<void(PageId, FlashAddress, const Slice&)>& visitor,
      RecoveryReport* report = nullptr);

  // Report from the most recent Recover() call (zeroes before any).
  RecoveryReport last_recovery_report() const;

  LogStoreStats stats() const;
  std::vector<SegmentInfo> segments() const;
  uint64_t open_segment_id() const;
  const LogStoreOptions& options() const { return options_; }

  // Dead bytes / used record bytes across the directory, read from two
  // relaxed atomics (mirrors maintained under mu_ at every directory
  // mutation). Lock-free: this is the op-path maintenance *trigger* —
  // a foreground thread asking "does the log need GC?" must not contend
  // with appends or GC itself. Advisory (the two loads are not a
  // consistent snapshot); exact accounting stays in segments().
  double DeadSpaceFraction() const;

  // Corrupts a segment's accounting by `used_delta`/`dead_delta` bytes.
  // Exists solely so tests can seed the miscounted-segment violations that
  // analysis::LogStoreAuditor must detect; never call it elsewhere.
  void TestOnlyAdjustSegmentAccounting(uint64_t segment_id,
                                       int64_t used_delta, int64_t dead_delta);

  // On-media record header size: magic(4) pid(8) stored_len(4) crc(4)
  // flags(1) raw_len(4). `stored_len` stays at offset 12 so GC/recovery
  // framing is form-agnostic; the CRC at offset 16 covers the stored
  // payload bytes (compressed form for CSS records).
  static constexpr uint64_t kHeaderBytes = 4 + 8 + 4 + 4 + 1 + 4;
  static constexpr uint32_t kRecordMagic = 0x4C4C414Du;   // "LLAM"
  static constexpr uint32_t kSegmentMagic = 0x5345474Du;  // "SEGM"
  // Record flag bits (header byte at offset 20).
  static constexpr uint8_t kRecordFlagCompressed = 0x01;
  // Segment header: magic + id.
  static constexpr uint64_t kSegmentHeaderBytes = 4 + 8;

 private:
  // Starts segment `id` with its header in the buffer.
  void OpenSegmentLocked(uint64_t id) REQUIRES(mu_);
  // Writes and seals the open segment.
  Status FlushLocked() REQUIRES(mu_);
  // Shared append path: `stored` is what goes on media verbatim. Both
  // public Append forms and GC relocation (which must preserve the
  // record's form) funnel through here.
  Result<FlashAddress> AppendRecord(PageId pid, const Slice& stored,
                                    uint8_t flags, uint32_t raw_len);
  // Encodes into a pre-reserved buffer range of exactly
  // kHeaderBytes + stored.size() bytes (the unlatched half of Append).
  static void EncodeRecordTo(PageId pid, const Slice& stored, uint8_t flags,
                             uint32_t raw_len, char* dst);
  // Accounts a completed append group of `size` records.
  void RecordGroupLocked(uint64_t size) REQUIRES(mu_);
  // Parses the record at `data`; returns the *stored* payload view (still
  // compressed for CSS records) plus the form fields, or error.
  static Status DecodeRecord(const char* data, uint64_t len, bool verify,
                             PageId* pid, Slice* payload, uint8_t* flags,
                             uint32_t* raw_len);

  storage::SsdDevice* device_;
  LogStoreOptions options_;

  // Append/group-commit latch. Rank 2 in the global lock order: nests
  // inside a store maintenance pass and may be held across (simulated)
  // media waits, so the short cache-shard latches are ordered after it —
  // a shard latch must never wrap a stalling append (lock_order.h).
  mutable Mutex mu_ ACQUIRED_AFTER(lock_rank::kStoreMaintenance)
      ACQUIRED_BEFORE(lock_rank::kCacheShard);
  // Signaled when in-flight fills drain to zero and when sealing ends.
  std::condition_variable_any cv_;
  // Appends that reserved a range in open_buffer_ but have not finished
  // encoding into it.
  uint64_t pending_fills_ GUARDED_BY(mu_) = 0;
  // True while a flusher waits for fills and writes the segment; blocks
  // new reservations so the sealed image is complete.
  bool sealing_ GUARDED_BY(mu_) = false;
  // Reservations since pending_fills_ last rose from zero (current group).
  uint64_t group_reserved_ GUARDED_BY(mu_) = 0;
  // Contents of the open segment so far. Capacity is reserved at
  // segment_bytes, so in-place fills never move the data.
  std::string open_buffer_ GUARDED_BY(mu_);
  uint64_t open_segment_id_ GUARDED_BY(mu_) = 0;
  uint64_t next_segment_id_ GUARDED_BY(mu_) = 0;
  std::map<uint64_t, SegmentInfo> directory_ GUARDED_BY(mu_);

  LogStoreStats stats_ GUARDED_BY(mu_);
  RecoveryReport recovery_report_ GUARDED_BY(mu_);

  // Directory-total mirrors for DeadSpaceFraction(): record bytes in the
  // directory (headers excluded) and dead marks against them. Written
  // only under mu_, read lock-free.
  std::atomic<uint64_t> approx_used_bytes_{0};
  std::atomic<uint64_t> approx_dead_bytes_{0};
};

}  // namespace costperf::llama

#endif  // COSTPERF_LLAMA_LOG_STORE_H_
