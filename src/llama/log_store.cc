#include "llama/log_store.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "common/coding.h"
#include "common/crc32.h"

namespace costperf::llama {

std::string FlashAddress::ToString() const {
  char buf[64];
  snprintf(buf, sizeof(buf), "flash[%llu+%llu]",
           static_cast<unsigned long long>(offset()),
           static_cast<unsigned long long>(len()));
  return buf;
}

LogStructuredStore::LogStructuredStore(storage::SsdDevice* device,
                                       LogStoreOptions options)
    : device_(device), options_(options) {
  MutexLock lk(&mu_);
  OpenSegmentLocked(next_segment_id_++);
}

void LogStructuredStore::OpenSegmentLocked(uint64_t id) {
  open_segment_id_ = id;
  open_buffer_.clear();
  open_buffer_.reserve(options_.segment_bytes);
  PutFixed32(&open_buffer_, kSegmentMagic);
  PutFixed64(&open_buffer_, id);
  SegmentInfo info;
  info.id = id;
  info.used_bytes = kSegmentHeaderBytes;
  directory_[id] = info;
}

void LogStructuredStore::EncodeRecord(PageId pid, const Slice& image,
                                      std::string* dst) {
  PutFixed32(dst, kRecordMagic);
  PutFixed64(dst, pid);
  PutFixed32(dst, static_cast<uint32_t>(image.size()));
  PutFixed32(dst, MaskCrc(Crc32c(image.data(), image.size())));
  dst->append(image.data(), image.size());
}

Status LogStructuredStore::DecodeRecord(const char* data, uint64_t len,
                                        bool verify, PageId* pid,
                                        Slice* payload) {
  if (len < kHeaderBytes) return Status::Corruption("record too short");
  if (DecodeFixed32(data) != kRecordMagic) {
    return Status::Corruption("bad record magic");
  }
  uint64_t record_pid = DecodeFixed64(data + 4);
  uint32_t payload_len = DecodeFixed32(data + 12);
  uint32_t stored_crc = UnmaskCrc(DecodeFixed32(data + 16));
  if (kHeaderBytes + payload_len > len) {
    return Status::Corruption("record payload truncated");
  }
  if (verify &&
      Crc32c(data + kHeaderBytes, payload_len) != stored_crc) {
    return Status::Corruption("record checksum mismatch");
  }
  *pid = record_pid;
  *payload = Slice(data + kHeaderBytes, payload_len);
  return Status::Ok();
}

Result<FlashAddress> LogStructuredStore::Append(PageId pid,
                                                const Slice& image) {
  const uint64_t record_len = kHeaderBytes + image.size();
  if (record_len > options_.segment_bytes - kSegmentHeaderBytes) {
    return Status::InvalidArgument("page image exceeds segment size");
  }
  if (record_len > FlashAddress::kMaxLen) {
    return Status::InvalidArgument("page image exceeds address length field");
  }
  MutexLock lk(&mu_);
  if (open_buffer_.size() + record_len > options_.segment_bytes) {
    Status s = FlushLocked();
    if (!s.ok()) return s;
  }
  const uint64_t in_segment = open_buffer_.size();
  const uint64_t device_offset =
      open_segment_id_ * options_.segment_bytes + in_segment;
  EncodeRecord(pid, image, &open_buffer_);
  directory_[open_segment_id_].used_bytes = open_buffer_.size();
  stats_.records_appended++;
  stats_.bytes_appended += record_len;
  stats_.payload_bytes_appended += image.size();
  return FlashAddress(device_offset, record_len);
}

Status LogStructuredStore::FlushLocked() {
  if (open_buffer_.size() <= kSegmentHeaderBytes) return Status::Ok();
  const uint64_t device_offset = open_segment_id_ * options_.segment_bytes;
  Status s = device_->Write(device_offset, Slice(open_buffer_));
  if (!s.ok()) return s;
  directory_[open_segment_id_].sealed = true;
  stats_.segments_written++;
  OpenSegmentLocked(next_segment_id_++);
  return Status::Ok();
}

Status LogStructuredStore::Flush() {
  MutexLock lk(&mu_);
  return FlushLocked();
}

Status LogStructuredStore::Read(FlashAddress addr, std::string* image,
                                PageId* pid_out) {
  if (!addr.valid()) return Status::InvalidArgument("invalid flash address");
  const uint64_t seg = addr.offset() / options_.segment_bytes;
  std::string raw;
  {
    MutexLock lk(&mu_);
    if (seg == open_segment_id_) {
      // Served from the open write buffer: no device I/O.
      const uint64_t in_seg = addr.offset() % options_.segment_bytes;
      if (in_seg + addr.len() > open_buffer_.size()) {
        return Status::Corruption("address beyond open buffer");
      }
      stats_.buffer_reads++;
      PageId pid = 0;
      Slice payload;
      Status s = DecodeRecord(open_buffer_.data() + in_seg, addr.len(),
                              options_.verify_checksums, &pid, &payload);
      if (!s.ok()) return s;
      if (pid_out != nullptr) *pid_out = pid;
      image->assign(payload.data(), payload.size());
      return Status::Ok();
    }
    stats_.device_reads++;
  }
  raw.resize(addr.len());
  Status s = device_->Read(addr.offset(), addr.len(), raw.data());
  if (!s.ok()) return s;
  PageId pid = 0;
  Slice payload;
  s = DecodeRecord(raw.data(), raw.size(), options_.verify_checksums, &pid,
                   &payload);
  if (!s.ok()) return s;
  if (pid_out != nullptr) *pid_out = pid;
  image->assign(payload.data(), payload.size());
  return Status::Ok();
}

void LogStructuredStore::MarkDead(FlashAddress addr) {
  if (!addr.valid()) return;
  const uint64_t seg = addr.offset() / options_.segment_bytes;
  MutexLock lk(&mu_);
  auto it = directory_.find(seg);
  if (it == directory_.end()) return;  // already collected
  it->second.dead_bytes += addr.len();
  stats_.dead_bytes_marked += addr.len();
}

Result<GcStats> LogStructuredStore::CollectSegment(uint64_t segment_id,
                                                   const LivenessFn& live,
                                                   const InstallFn& install) {
  {
    MutexLock lk(&mu_);
    auto it = directory_.find(segment_id);
    if (it == directory_.end()) return Status::NotFound("no such segment");
    if (!it->second.sealed) {
      return Status::FailedPrecondition("cannot collect the open segment");
    }
    stats_.gc_runs++;
  }
  // Read the whole segment in one I/O (GC is itself log-structured work).
  std::string raw(options_.segment_bytes, '\0');
  Status s = device_->Read(segment_id * options_.segment_bytes,
                           options_.segment_bytes, raw.data());
  if (!s.ok()) return s;
  {
    MutexLock lk(&mu_);
    stats_.device_reads++;
  }

  GcStats gc;
  gc.segment_id = segment_id;
  if (DecodeFixed32(raw.data()) != kSegmentMagic ||
      DecodeFixed64(raw.data() + 4) != segment_id) {
    return Status::Corruption("segment header mismatch during GC");
  }

  uint64_t pos = kSegmentHeaderBytes;
  while (pos + kHeaderBytes <= raw.size() &&
         DecodeFixed32(raw.data() + pos) == kRecordMagic) {
    PageId pid = 0;
    Slice payload;
    s = DecodeRecord(raw.data() + pos, raw.size() - pos,
                     options_.verify_checksums, &pid, &payload);
    if (!s.ok()) return s;
    const uint64_t record_len = kHeaderBytes + payload.size();
    FlashAddress old_addr(segment_id * options_.segment_bytes + pos,
                          record_len);
    if (live(pid, old_addr)) {
      Result<FlashAddress> appended = Append(pid, payload);
      if (!appended.ok()) return appended.status();
      if (install(pid, old_addr, *appended)) {
        gc.relocated_records++;
        gc.relocated_bytes += record_len;
      } else {
        // Page moved concurrently; the copy we just wrote is garbage.
        MarkDead(*appended);
      }
    }
    pos += record_len;
  }

  // Reclaim the media and forget the segment.
  s = device_->Trim(segment_id * options_.segment_bytes,
                    options_.segment_bytes);
  if (!s.ok()) return s;
  {
    MutexLock lk(&mu_);
    auto it = directory_.find(segment_id);
    if (it != directory_.end()) {
      gc.reclaimed_bytes = options_.segment_bytes;
      // Close the space-accounting loop: record bytes (and their dead
      // marks) leave the directory with the collected segment.
      stats_.bytes_collected += it->second.used_bytes - kSegmentHeaderBytes;
      stats_.dead_bytes_collected += it->second.dead_bytes;
      directory_.erase(it);
    }
    stats_.gc_relocated_records += gc.relocated_records;
    stats_.gc_reclaimed_bytes += gc.reclaimed_bytes;
  }
  return gc;
}

Result<GcStats> LogStructuredStore::CollectColdest(const LivenessFn& live,
                                                   const InstallFn& install,
                                                   double live_threshold) {
  uint64_t victim = 0;
  double victim_live = 2.0;
  {
    MutexLock lk(&mu_);
    for (const auto& [id, info] : directory_) {
      if (!info.sealed) continue;
      double lf = info.live_fraction();
      if (lf < victim_live) {
        victim_live = lf;
        victim = id;
      }
    }
  }
  if (victim_live > live_threshold) {
    return Status::NotFound("no segment below live threshold");
  }
  return CollectSegment(victim, live, install);
}

Status LogStructuredStore::Recover(
    const std::function<void(PageId, FlashAddress, const Slice&)>& visitor) {
  // Scan the device in segment strides; rebuild directory from headers.
  const uint64_t nsegs = device_->capacity_bytes() / options_.segment_bytes;
  std::string raw(options_.segment_bytes, '\0');
  uint64_t max_seen = 0;
  bool any = false;
  for (uint64_t seg = 0; seg < nsegs; ++seg) {
    // Cheap header probe first.
    char hdr[kSegmentHeaderBytes];
    Status s = device_->Read(seg * options_.segment_bytes,
                             kSegmentHeaderBytes, hdr);
    if (!s.ok()) return s;
    if (DecodeFixed32(hdr) != kSegmentMagic) continue;
    if (DecodeFixed64(hdr + 4) != seg) continue;
    s = device_->Read(seg * options_.segment_bytes, options_.segment_bytes,
                      raw.data());
    if (!s.ok()) return s;

    SegmentInfo info;
    info.id = seg;
    info.sealed = true;
    uint64_t pos = kSegmentHeaderBytes;
    while (pos + kHeaderBytes <= raw.size() &&
           DecodeFixed32(raw.data() + pos) == kRecordMagic) {
      PageId pid = 0;
      Slice payload;
      s = DecodeRecord(raw.data() + pos, raw.size() - pos,
                       options_.verify_checksums, &pid, &payload);
      if (!s.ok()) return s;
      const uint64_t record_len = kHeaderBytes + payload.size();
      visitor(pid, FlashAddress(seg * options_.segment_bytes + pos,
                                record_len),
              payload);
      pos += record_len;
    }
    info.used_bytes = pos;
    {
      MutexLock lk(&mu_);
      directory_[seg] = info;
      stats_.recovered_bytes += info.used_bytes - kSegmentHeaderBytes;
    }
    max_seen = std::max(max_seen, seg);
    any = true;
  }
  MutexLock lk(&mu_);
  if (any && max_seen + 1 >= next_segment_id_) {
    // Re-open the log past everything recovered. Drop the still-empty
    // segment directory entry created at construction.
    directory_.erase(open_segment_id_);
    next_segment_id_ = max_seen + 1;
    OpenSegmentLocked(next_segment_id_++);
  }
  return Status::Ok();
}

LogStoreStats LogStructuredStore::stats() const {
  MutexLock lk(&mu_);
  return stats_;
}

std::vector<SegmentInfo> LogStructuredStore::segments() const {
  MutexLock lk(&mu_);
  std::vector<SegmentInfo> out;
  out.reserve(directory_.size());
  for (const auto& [id, info] : directory_) out.push_back(info);
  return out;
}

uint64_t LogStructuredStore::open_segment_id() const {
  MutexLock lk(&mu_);
  return open_segment_id_;
}

void LogStructuredStore::TestOnlyAdjustSegmentAccounting(uint64_t segment_id,
                                                         int64_t used_delta,
                                                         int64_t dead_delta) {
  MutexLock lk(&mu_);
  auto it = directory_.find(segment_id);
  if (it == directory_.end()) return;
  it->second.used_bytes += used_delta;
  it->second.dead_bytes += dead_delta;
}

}  // namespace costperf::llama
