#include "llama/log_store.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <vector>

#include "common/coding.h"
#include "common/crc32.h"
#include "compression/compressor.h"

namespace costperf::llama {

std::string FlashAddress::ToString() const {
  char buf[64];
  snprintf(buf, sizeof(buf), "flash[%llu+%llu]",
           static_cast<unsigned long long>(offset()),
           static_cast<unsigned long long>(len()));
  return buf;
}

LogStructuredStore::LogStructuredStore(storage::SsdDevice* device,
                                       LogStoreOptions options)
    : device_(device), options_(options) {
  MutexLock lk(&mu_);
  OpenSegmentLocked(next_segment_id_++);
}

void LogStructuredStore::OpenSegmentLocked(uint64_t id) {
  open_segment_id_ = id;
  open_buffer_.clear();
  open_buffer_.reserve(options_.segment_bytes);
  PutFixed32(&open_buffer_, kSegmentMagic);
  PutFixed64(&open_buffer_, id);
  SegmentInfo info;
  info.id = id;
  info.used_bytes = kSegmentHeaderBytes;
  directory_[id] = info;
}

void LogStructuredStore::EncodeRecordTo(PageId pid, const Slice& stored,
                                        uint8_t flags, uint32_t raw_len,
                                        char* dst) {
  EncodeFixed32(dst, kRecordMagic);
  EncodeFixed64(dst + 4, pid);
  EncodeFixed32(dst + 12, static_cast<uint32_t>(stored.size()));
  // The CRC covers the stored bytes — the compressed form for CSS
  // records — so torn-tail recovery validates both forms the same way.
  EncodeFixed32(dst + 16, MaskCrc(Crc32c(stored.data(), stored.size())));
  dst[20] = static_cast<char>(flags);
  EncodeFixed32(dst + 21, raw_len);
  memcpy(dst + kHeaderBytes, stored.data(), stored.size());
}

Status LogStructuredStore::DecodeRecord(const char* data, uint64_t len,
                                        bool verify, PageId* pid,
                                        Slice* payload, uint8_t* flags,
                                        uint32_t* raw_len) {
  if (len < kHeaderBytes) return Status::Corruption("record too short");
  if (DecodeFixed32(data) != kRecordMagic) {
    return Status::Corruption("bad record magic");
  }
  uint64_t record_pid = DecodeFixed64(data + 4);
  uint32_t payload_len = DecodeFixed32(data + 12);
  uint32_t stored_crc = UnmaskCrc(DecodeFixed32(data + 16));
  uint8_t record_flags = static_cast<uint8_t>(data[20]);
  uint32_t record_raw_len = DecodeFixed32(data + 21);
  if (kHeaderBytes + payload_len > len) {
    return Status::Corruption("record payload truncated");
  }
  if (verify &&
      Crc32c(data + kHeaderBytes, payload_len) != stored_crc) {
    return Status::Corruption("record checksum mismatch");
  }
  if ((record_flags & ~kRecordFlagCompressed) != 0) {
    return Status::Corruption("unknown record flags");
  }
  if ((record_flags & kRecordFlagCompressed) == 0 &&
      record_raw_len != payload_len) {
    return Status::Corruption("raw length mismatch on plain record");
  }
  *pid = record_pid;
  *payload = Slice(data + kHeaderBytes, payload_len);
  *flags = record_flags;
  *raw_len = record_raw_len;
  return Status::Ok();
}

void LogStructuredStore::RecordGroupLocked(uint64_t size) {
  stats_.append_groups++;
  size_t bucket = 0;  // 1, 2, 3-4, 5-8, 9-16, 17+
  if (size >= 17) {
    bucket = 5;
  } else if (size >= 9) {
    bucket = 4;
  } else if (size >= 5) {
    bucket = 3;
  } else if (size >= 3) {
    bucket = 2;
  } else if (size == 2) {
    bucket = 1;
  }
  stats_.group_size_hist[bucket]++;
}

Result<FlashAddress> LogStructuredStore::Append(PageId pid,
                                                const Slice& image) {
  if (image.size() > UINT32_MAX) {
    return Status::InvalidArgument("page image exceeds length field");
  }
  return AppendRecord(pid, image, 0, static_cast<uint32_t>(image.size()));
}

Result<FlashAddress> LogStructuredStore::AppendCompressed(
    PageId pid, const Slice& compressed, uint32_t raw_len) {
  return AppendRecord(pid, compressed, kRecordFlagCompressed, raw_len);
}

Result<FlashAddress> LogStructuredStore::AppendRecord(PageId pid,
                                                      const Slice& stored,
                                                      uint8_t flags,
                                                      uint32_t raw_len) {
  const uint64_t record_len = kHeaderBytes + stored.size();
  if (record_len > options_.segment_bytes - kSegmentHeaderBytes) {
    return Status::InvalidArgument("page image exceeds segment size");
  }
  if (record_len > FlashAddress::kMaxLen) {
    return Status::InvalidArgument("page image exceeds address length field");
  }
  const bool compressed = (flags & kRecordFlagCompressed) != 0;
  uint64_t device_offset = 0;
  char* dst = nullptr;
  {
    MutexLock lk(&mu_);
    // A sealing flusher owns the buffer until the segment is on media.
    while (sealing_) cv_.wait(mu_);
    if (open_buffer_.size() + record_len > options_.segment_bytes) {
      Status s = FlushLocked();
      if (!s.ok()) return s;
    }
    const uint64_t in_segment = open_buffer_.size();
    device_offset = open_segment_id_ * options_.segment_bytes + in_segment;
    // Reserve the record's byte range; capacity was pre-reserved at
    // segment size, so this never reallocates and `dst` stays valid
    // after the latch drops.
    open_buffer_.resize(in_segment + record_len);
    dst = open_buffer_.data() + in_segment;
    pending_fills_++;
    group_reserved_++;
    SegmentInfo& seg = directory_[open_segment_id_];
    seg.used_bytes = open_buffer_.size();
    stats_.records_appended++;
    stats_.bytes_appended += record_len;
    stats_.payload_bytes_appended += stored.size();
    if (compressed) {
      seg.css_stored_bytes += stored.size();
      seg.css_raw_bytes += raw_len;
      stats_.css_records_appended++;
      stats_.css_stored_bytes_appended += stored.size();
      stats_.css_raw_bytes_appended += raw_len;
    }
    approx_used_bytes_.fetch_add(record_len, std::memory_order_relaxed);
  }
  // Header, checksum, and payload copy happen outside the latch —
  // concurrent appends encode their disjoint ranges in parallel.
  EncodeRecordTo(pid, stored, flags, raw_len, dst);
  {
    MutexLock lk(&mu_);
    if (--pending_fills_ == 0) {
      RecordGroupLocked(group_reserved_);
      group_reserved_ = 0;
      cv_.notify_all();
    }
  }
  return FlashAddress(device_offset, record_len);
}

Status LogStructuredStore::FlushLocked() {
  // Another flusher may be sealing; once it finishes the buffer is fresh
  // (usually empty) and the size check below turns this into a no-op.
  while (sealing_) cv_.wait(mu_);
  if (open_buffer_.size() <= kSegmentHeaderBytes) return Status::Ok();
  // Block new reservations and wait out in-flight encodes so the segment
  // image written below is complete.
  sealing_ = true;
  while (pending_fills_ > 0) cv_.wait(mu_);
  const uint64_t device_offset = open_segment_id_ * options_.segment_bytes;
  Status s = device_->Write(device_offset, Slice(open_buffer_));
  sealing_ = false;
  cv_.notify_all();
  if (!s.ok()) return s;
  directory_[open_segment_id_].sealed = true;
  stats_.segments_written++;
  OpenSegmentLocked(next_segment_id_++);
  return Status::Ok();
}

Status LogStructuredStore::Flush() {
  MutexLock lk(&mu_);
  return FlushLocked();
}

namespace {

// Materializes a decoded record's payload into *image, inflating
// compressed records. The header's raw_len bounds the decompression, and
// a post-CRC decompress failure is Corruption — a compressed image whose
// checksum passes but whose stream is malformed must never be adopted.
Status MaterializeRecordPayload(const Slice& payload, uint8_t flags,
                                uint32_t raw_len, std::string* image) {
  if ((flags & LogStructuredStore::kRecordFlagCompressed) == 0) {
    image->assign(payload.data(), payload.size());
    return Status::Ok();
  }
  Status s = compression::Compressor::Decompress(payload, image, raw_len);
  if (!s.ok()) return s;
  if (image->size() != raw_len) {
    return Status::Corruption("compressed record raw length mismatch");
  }
  return Status::Ok();
}

}  // namespace

Status LogStructuredStore::Read(FlashAddress addr, std::string* image,
                                PageId* pid_out, bool* was_compressed) {
  if (!addr.valid()) return Status::InvalidArgument("invalid flash address");
  const uint64_t seg = addr.offset() / options_.segment_bytes;
  // Raw record bytes land here (copied out of the open buffer, or read
  // from the device); decode and any decompression run latch-free.
  std::string raw;
  bool buffered = false;
  {
    MutexLock lk(&mu_);
    // Wait out in-flight encodes so we never read a reserved-but-unfilled
    // range. The open segment may seal while we wait, flipping us to the
    // device path.
    while (seg == open_segment_id_ && pending_fills_ > 0) cv_.wait(mu_);
    if (seg == open_segment_id_) {
      // Served from the open write buffer: no device I/O. Copy the record
      // out so decode/decompress need not hold the append latch.
      const uint64_t in_seg = addr.offset() % options_.segment_bytes;
      if (in_seg + addr.len() > open_buffer_.size()) {
        return Status::Corruption("address beyond open buffer");
      }
      stats_.buffer_reads++;
      raw.assign(open_buffer_.data() + in_seg, addr.len());
      buffered = true;
    } else {
      stats_.device_reads++;
    }
  }
  if (!buffered) {
    raw.resize(addr.len());
    Status s = device_->Read(addr.offset(), addr.len(), raw.data());
    if (!s.ok()) return s;
  }
  PageId pid = 0;
  Slice payload;
  uint8_t flags = 0;
  uint32_t raw_len = 0;
  Status s = DecodeRecord(raw.data(), raw.size(), options_.verify_checksums,
                          &pid, &payload, &flags, &raw_len);
  if (!s.ok()) return s;
  if (pid_out != nullptr) *pid_out = pid;
  if (was_compressed != nullptr) {
    *was_compressed = (flags & kRecordFlagCompressed) != 0;
  }
  return MaterializeRecordPayload(payload, flags, raw_len, image);
}

void LogStructuredStore::MarkDead(FlashAddress addr) {
  if (!addr.valid()) return;
  const uint64_t seg = addr.offset() / options_.segment_bytes;
  MutexLock lk(&mu_);
  auto it = directory_.find(seg);
  if (it == directory_.end()) return;  // already collected
  it->second.dead_bytes += addr.len();
  stats_.dead_bytes_marked += addr.len();
  approx_dead_bytes_.fetch_add(addr.len(), std::memory_order_relaxed);
}

Result<GcStats> LogStructuredStore::CollectSegment(uint64_t segment_id,
                                                   const LivenessFn& live,
                                                   const InstallFn& install) {
  uint64_t used_bytes = 0;
  {
    MutexLock lk(&mu_);
    auto it = directory_.find(segment_id);
    if (it == directory_.end()) return Status::NotFound("no such segment");
    if (!it->second.sealed) {
      return Status::FailedPrecondition("cannot collect the open segment");
    }
    used_bytes = it->second.used_bytes;
    stats_.gc_runs++;
  }
  // Read the whole segment in one I/O (GC is itself log-structured work).
  std::string raw(options_.segment_bytes, '\0');
  Status s = device_->Read(segment_id * options_.segment_bytes,
                           options_.segment_bytes, raw.data());
  if (!s.ok()) return s;
  {
    MutexLock lk(&mu_);
    stats_.device_reads++;
  }

  GcStats gc;
  gc.segment_id = segment_id;
  std::vector<FlashAddress> relocated_old;
  if (DecodeFixed32(raw.data()) != kSegmentMagic ||
      DecodeFixed64(raw.data() + 4) != segment_id) {
    return Status::Corruption("segment header mismatch during GC");
  }

  // Scan only the adopted range: bytes past used_bytes are either slack or
  // a truncated torn tail that Recover() already discarded.
  const uint64_t scan_end = std::min<uint64_t>(used_bytes, raw.size());
  uint64_t pos = kSegmentHeaderBytes;
  while (pos + kHeaderBytes <= scan_end &&
         DecodeFixed32(raw.data() + pos) == kRecordMagic) {
    PageId pid = 0;
    Slice payload;
    uint8_t flags = 0;
    uint32_t raw_len = 0;
    const uint64_t framed_len =
        kHeaderBytes + DecodeFixed32(raw.data() + pos + 12);
    if (pos + framed_len > scan_end) break;  // runs off the adopted range
    s = DecodeRecord(raw.data() + pos, raw.size() - pos,
                     options_.verify_checksums, &pid, &payload, &flags,
                     &raw_len);
    if (!s.ok()) {
      // Checksum-failed record (skipped and marked dead by Recover):
      // nothing live to relocate; step over it.
      pos += framed_len;
      continue;
    }
    const uint64_t record_len = kHeaderBytes + payload.size();
    FlashAddress old_addr(segment_id * options_.segment_bytes + pos,
                          record_len);
    if (live(pid, old_addr)) {
      // Relocate the stored bytes verbatim, preserving the record's
      // form — GC must never pay a recompression, and a compressed
      // record stays compressed at its new address.
      Result<FlashAddress> appended = AppendRecord(pid, payload, flags,
                                                   raw_len);
      if (!appended.ok()) return appended.status();
      if (install(pid, old_addr, *appended)) {
        gc.relocated_records++;
        gc.relocated_bytes += record_len;
        relocated_old.push_back(old_addr);
      } else {
        // Page moved concurrently (e.g. a foreground read loaded it
        // between liveness check and install); the copy we just wrote is
        // garbage, and the page still references old_addr.
        MarkDead(*appended);
        gc.failed_installs++;
      }
    }
    pos += record_len;
  }

  // Durability ordering: every record in the victim is now either
  // relocated (sitting in the open segment's in-memory buffer) or dead —
  // superseded by a newer image that may ALSO still be buffered. Either
  // way the replacement must reach media before the victim's durable
  // copy is destroyed, or a crash here loses the page entirely. Seal the
  // open segment first, then trim.
  s = Flush();
  if (!s.ok()) return s;

  if (gc.failed_installs > 0) {
    // Some page still references a record in this segment (an install
    // raced a concurrent load), so the media cannot be reclaimed. Mark
    // the successfully relocated records dead so the segment's live
    // fraction reflects reality and a later round retries the trim.
    for (const FlashAddress& a : relocated_old) MarkDead(a);
    {
      MutexLock lk(&mu_);
      stats_.gc_relocated_records += gc.relocated_records;
    }
    return gc;
  }

  // Reclaim the media and forget the segment.
  s = device_->Trim(segment_id * options_.segment_bytes,
                    options_.segment_bytes);
  if (!s.ok()) return s;
  {
    MutexLock lk(&mu_);
    auto it = directory_.find(segment_id);
    if (it != directory_.end()) {
      gc.reclaimed_bytes = options_.segment_bytes;
      // Close the space-accounting loop: record bytes (and their dead
      // marks) leave the directory with the collected segment.
      stats_.bytes_collected += it->second.used_bytes - kSegmentHeaderBytes;
      stats_.dead_bytes_collected += it->second.dead_bytes;
      stats_.css_stored_bytes_collected += it->second.css_stored_bytes;
      stats_.css_raw_bytes_collected += it->second.css_raw_bytes;
      approx_used_bytes_.fetch_sub(it->second.used_bytes - kSegmentHeaderBytes,
                                   std::memory_order_relaxed);
      approx_dead_bytes_.fetch_sub(it->second.dead_bytes,
                                   std::memory_order_relaxed);
      directory_.erase(it);
    }
    stats_.gc_relocated_records += gc.relocated_records;
    stats_.gc_reclaimed_bytes += gc.reclaimed_bytes;
  }
  return gc;
}

Result<GcStats> LogStructuredStore::CollectColdest(const LivenessFn& live,
                                                   const InstallFn& install,
                                                   double live_threshold) {
  uint64_t victim = 0;
  double victim_live = 2.0;
  {
    MutexLock lk(&mu_);
    for (const auto& [id, info] : directory_) {
      if (!info.sealed) continue;
      double lf = info.live_fraction();
      if (lf < victim_live) {
        victim_live = lf;
        victim = id;
      }
    }
  }
  if (victim_live > live_threshold) {
    return Status::NotFound("no segment below live threshold");
  }
  return CollectSegment(victim, live, install);
}

namespace {

// Bytes of actual data (trailing non-zero content) in raw at or after
// `from`. Zero means the tail is pristine (never written or trimmed).
uint64_t TrailingDataBytes(const std::string& raw, uint64_t from) {
  for (uint64_t i = raw.size(); i > from; --i) {
    if (raw[i - 1] != '\0') return i - from;
  }
  return 0;
}

}  // namespace

std::string RecoveryReport::ToString() const {
  char buf[256];
  snprintf(buf, sizeof(buf),
           "recovery: segments=%llu records=%llu bytes=%llu truncated=%llu "
           "corrupt_skipped=%llu torn_segments=%llu",
           (unsigned long long)segments_scanned,
           (unsigned long long)records_adopted,
           (unsigned long long)bytes_adopted,
           (unsigned long long)bytes_truncated,
           (unsigned long long)corrupt_records_skipped,
           (unsigned long long)torn_segments);
  return buf;
}

Status LogStructuredStore::Recover(
    const std::function<void(PageId, FlashAddress, const Slice&)>& visitor,
    RecoveryReport* report) {
  // Scan the device in segment strides; rebuild directory from headers.
  const uint64_t nsegs = device_->capacity_bytes() / options_.segment_bytes;
  std::string raw(options_.segment_bytes, '\0');
  RecoveryReport rep;
  uint64_t max_seen = 0;
  bool any = false;
  for (uint64_t seg = 0; seg < nsegs; ++seg) {
    // Cheap header probe first.
    char hdr[kSegmentHeaderBytes];
    Status s = device_->Read(seg * options_.segment_bytes,
                             kSegmentHeaderBytes, hdr);
    if (!s.ok()) return s;
    const bool header_valid = DecodeFixed32(hdr) == kSegmentMagic &&
                              DecodeFixed64(hdr + 4) == seg;
    if (!header_valid) {
      // Segment writes start with a nonzero magic, and a torn write
      // persists a prefix — so an all-zero probe means nothing of any
      // segment write landed here: pristine (never written / trimmed).
      bool probe_zero = true;
      for (uint64_t i = 0; i < kSegmentHeaderBytes; ++i) {
        if (hdr[i] != '\0') probe_zero = false;
      }
      if (probe_zero) continue;
      s = device_->Read(seg * options_.segment_bytes, options_.segment_bytes,
                        raw.data());
      if (!s.ok()) return s;
      const uint64_t garbage = TrailingDataBytes(raw, 0);
      // Torn segment header: the crash hit inside the first 12 bytes of
      // the segment write. Nothing is adoptable, but the slot id is
      // consumed — the re-opened log must not reuse it over the garbage.
      rep.torn_segments++;
      rep.bytes_truncated += garbage;
      max_seen = std::max(max_seen, seg);
      any = true;
      continue;
    }
    s = device_->Read(seg * options_.segment_bytes, options_.segment_bytes,
                      raw.data());
    if (!s.ok()) return s;
    rep.segments_scanned++;

    // Walk the record framing. A record is adoptable only if every framed
    // record is walked past it: the adopted range ends after the LAST
    // record with a valid checksum; framed-but-corrupt records before that
    // point are skipped (marked dead), everything after it is torn tail.
    struct Rec {
      uint64_t pos = 0;
      uint64_t len = 0;
      PageId pid = 0;
      Slice payload;           // stored bytes (compressed for CSS records)
      std::string inflated;    // decompressed form of a valid CSS record
      uint8_t flags = 0;
      uint32_t raw_len = 0;
      bool valid = false;
    };
    std::vector<Rec> recs;
    uint64_t pos = kSegmentHeaderBytes;
    while (pos + kHeaderBytes <= raw.size() &&
           DecodeFixed32(raw.data() + pos) == kRecordMagic) {
      const uint64_t payload_len = DecodeFixed32(raw.data() + pos + 12);
      if (pos + kHeaderBytes + payload_len > raw.size()) break;  // runs off
      Rec rec;
      rec.pos = pos;
      rec.len = kHeaderBytes + payload_len;
      Status ds = DecodeRecord(raw.data() + pos, raw.size() - pos,
                               options_.verify_checksums, &rec.pid,
                               &rec.payload, &rec.flags, &rec.raw_len);
      rec.valid = ds.ok();
      if (rec.valid && (rec.flags & kRecordFlagCompressed) != 0) {
        // A compressed image must inflate cleanly to be adoptable: a
        // record whose CRC passes but whose stream is torn/malformed is
        // treated exactly like a checksum failure (skipped, marked dead)
        // rather than surfacing garbage to the visitor.
        rec.valid = MaterializeRecordPayload(rec.payload, rec.flags,
                                             rec.raw_len, &rec.inflated)
                        .ok();
      }
      recs.push_back(std::move(rec));
      pos += kHeaderBytes + payload_len;
    }
    size_t last_valid = recs.size();
    for (size_t i = 0; i < recs.size(); ++i) {
      if (recs[i].valid) last_valid = i;
    }
    uint64_t adopted_end = kSegmentHeaderBytes;
    if (last_valid != recs.size()) {
      adopted_end = recs[last_valid].pos + recs[last_valid].len;
    }
    const uint64_t torn = TrailingDataBytes(raw, adopted_end);
    if (torn > 0) {
      rep.torn_segments++;
      rep.bytes_truncated += torn;
    }

    SegmentInfo info;
    info.id = seg;
    info.sealed = true;
    info.used_bytes = adopted_end;
    uint64_t skipped_dead = 0;
    for (const Rec& r : recs) {
      if (r.pos >= adopted_end) break;
      if (!r.valid) {
        rep.corrupt_records_skipped++;
        skipped_dead += r.len;
        continue;
      }
      if ((r.flags & kRecordFlagCompressed) != 0) {
        // CSS accounting covers only records adopted as compressed; a
        // corrupt record's form is unknowable (its header may be the
        // damage), so it stays out of the css closure on both sides.
        info.css_stored_bytes += r.payload.size();
        info.css_raw_bytes += r.raw_len;
      }
      rep.records_adopted++;
      visitor(r.pid,
              FlashAddress(seg * options_.segment_bytes + r.pos, r.len),
              (r.flags & kRecordFlagCompressed) != 0 ? Slice(r.inflated)
                                                     : r.payload);
    }
    info.dead_bytes = skipped_dead;
    rep.bytes_adopted += adopted_end - kSegmentHeaderBytes;
    {
      MutexLock lk(&mu_);
      directory_[seg] = info;
      stats_.recovered_bytes += info.used_bytes - kSegmentHeaderBytes;
      stats_.css_stored_bytes_recovered += info.css_stored_bytes;
      stats_.css_raw_bytes_recovered += info.css_raw_bytes;
      stats_.dead_bytes_marked += skipped_dead;
      approx_used_bytes_.fetch_add(info.used_bytes - kSegmentHeaderBytes,
                                   std::memory_order_relaxed);
      approx_dead_bytes_.fetch_add(skipped_dead, std::memory_order_relaxed);
    }
    max_seen = std::max(max_seen, seg);
    any = true;
  }
  MutexLock lk(&mu_);
  if (any && max_seen + 1 >= next_segment_id_) {
    // Re-open the log past everything recovered. Drop the construction
    // -time open entry, unless that slot was adopted from media (sealed).
    auto open_it = directory_.find(open_segment_id_);
    if (open_it != directory_.end() && !open_it->second.sealed) {
      directory_.erase(open_it);
    }
    next_segment_id_ = max_seen + 1;
    OpenSegmentLocked(next_segment_id_++);
  }
  recovery_report_ = rep;
  if (report != nullptr) *report = rep;
  return Status::Ok();
}

RecoveryReport LogStructuredStore::last_recovery_report() const {
  MutexLock lk(&mu_);
  return recovery_report_;
}

LogStoreStats LogStructuredStore::stats() const {
  MutexLock lk(&mu_);
  return stats_;
}

std::vector<SegmentInfo> LogStructuredStore::segments() const {
  MutexLock lk(&mu_);
  std::vector<SegmentInfo> out;
  out.reserve(directory_.size());
  for (const auto& [id, info] : directory_) out.push_back(info);
  return out;
}

uint64_t LogStructuredStore::open_segment_id() const {
  MutexLock lk(&mu_);
  return open_segment_id_;
}

void LogStructuredStore::TestOnlyAdjustSegmentAccounting(uint64_t segment_id,
                                                         int64_t used_delta,
                                                         int64_t dead_delta) {
  MutexLock lk(&mu_);
  auto it = directory_.find(segment_id);
  if (it == directory_.end()) return;
  it->second.used_bytes += used_delta;
  it->second.dead_bytes += dead_delta;
  approx_used_bytes_.fetch_add(static_cast<uint64_t>(used_delta),
                               std::memory_order_relaxed);
  approx_dead_bytes_.fetch_add(static_cast<uint64_t>(dead_delta),
                               std::memory_order_relaxed);
}

double LogStructuredStore::DeadSpaceFraction() const {
  const uint64_t used = approx_used_bytes_.load(std::memory_order_relaxed);
  if (used == 0) return 0.0;
  const uint64_t dead = approx_dead_bytes_.load(std::memory_order_relaxed);
  const double f = static_cast<double>(dead) / static_cast<double>(used);
  return f > 1.0 ? 1.0 : f;
}

}  // namespace costperf::llama
