#ifndef COSTPERF_LLAMA_FLASH_ADDRESS_H_
#define COSTPERF_LLAMA_FLASH_ADDRESS_H_

#include <cstdint>
#include <string>

namespace costperf::llama {

// Location of a record on the log-structured device: byte offset of its
// header plus total on-media length, packed into one word so it fits a
// mapping-table entry. Offset gets 40 bits (1 TiB), length 24 bits
// (16 MiB), which comfortably covers variable Bw-tree pages.
class FlashAddress {
 public:
  static constexpr uint64_t kOffsetBits = 40;
  static constexpr uint64_t kLenBits = 24;
  static constexpr uint64_t kMaxOffset = (1ull << kOffsetBits) - 1;
  static constexpr uint64_t kMaxLen = (1ull << kLenBits) - 1;

  FlashAddress() : packed_(0) {}
  FlashAddress(uint64_t offset, uint64_t len)
      : packed_((offset << kLenBits) | len) {}

  static FlashAddress FromPacked(uint64_t packed) {
    FlashAddress a;
    a.packed_ = packed;
    return a;
  }

  uint64_t offset() const { return packed_ >> kLenBits; }
  uint64_t len() const { return packed_ & kMaxLen; }
  uint64_t packed() const { return packed_; }
  bool valid() const { return packed_ != 0; }

  friend bool operator==(FlashAddress a, FlashAddress b) {
    return a.packed_ == b.packed_;
  }
  friend bool operator!=(FlashAddress a, FlashAddress b) {
    return a.packed_ != b.packed_;
  }

  std::string ToString() const;

 private:
  uint64_t packed_;
};

}  // namespace costperf::llama

#endif  // COSTPERF_LLAMA_FLASH_ADDRESS_H_
