#ifndef COSTPERF_LLAMA_CACHE_MANAGER_H_
#define COSTPERF_LLAMA_CACHE_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/hot_path.h"
#include "common/lock_order.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "mapping/mapping_table.h"

namespace costperf::llama {

// How the cache chooses eviction victims.
enum class EvictionPolicy {
  kLru,           // classic least-recently-used
  kSecondChance,  // clock with one reference bit
  // The paper's §4.2 policy: evict pages whose idle time exceeds the
  // breakeven interval T_i from Eq. (6) — their continued DRAM rental
  // costs more than paying for an SS operation on next access. Falls back
  // to LRU order among eligible pages; under memory pressure with no page
  // past breakeven, evicts LRU anyway (budget is a hard constraint).
  kCostBased,
};

std::string EvictionPolicyName(EvictionPolicy p);

// Which tier of the paper's three-level hierarchy (§7.2 / Fig. 8) a
// tracked page currently occupies. kDram pages have a live in-memory
// delta chain; kCss pages live only as a compressed record on secondary
// storage but stay tracked here so the tiering policy can see their
// recency, reheat history, and compressed footprint. Pages that fall all
// the way to plain SS are simply erased from the cache manager.
enum class CacheTier : uint8_t {
  kDram = 0,
  kCss = 1,
};

struct CacheOptions {
  uint64_t memory_budget_bytes = 64ull << 20;
  EvictionPolicy policy = EvictionPolicy::kLru;
  // Breakeven idle interval for kCostBased.
  double breakeven_interval_seconds = 45.0;
  // Touch sampling: with touch_sample == 1 every Touch refreshes the
  // last-access tick; with N > 1 only every Nth touch (per thread) does
  // the table probe and recency update, the rest just bump a counter and
  // return. Recency then has 1-in-N granularity, which CLOCK-style
  // eviction tolerates; keep 1 when exact LRU order matters.
  uint32_t touch_sample = 1;
  // Shard count; rounded up to a power of two. 0 = default (16).
  uint32_t shards = 0;
  Clock* clock = nullptr;  // defaults to RealClock::Global()
};

struct CacheStats {
  uint64_t insertions = 0;
  uint64_t touches = 0;
  uint64_t evictions = 0;
  uint64_t resident_bytes = 0;
  uint64_t resident_pages = 0;
  // Touches that took the sampled fast path (skipped: no table probe,
  // no clock read). touches counts every Touch call.
  uint64_t touches_sampled = 0;
  // Compressed-secondary-storage tier occupancy and traffic.
  uint64_t css_pages = 0;
  uint64_t css_bytes = 0;    // compressed (stored) footprint
  uint64_t demotions = 0;    // DRAM -> CSS transitions
  uint64_t promotions = 0;   // CSS -> DRAM transitions (reheats)
  // Per-tier access-interval accumulators: sum of (touch - previous
  // touch) gaps in nanoseconds, and how many gaps were sampled. The
  // mean interval is the store's *measured* inter-reference time, the
  // input the five-minute-rule breakeven is compared against.
  uint64_t dram_interval_nanos = 0;
  uint64_t dram_interval_samples = 0;
  uint64_t css_interval_nanos = 0;
  uint64_t css_interval_samples = 0;

  double MeanDramIntervalSeconds() const {
    return dram_interval_samples == 0
               ? 0.0
               : static_cast<double>(dram_interval_nanos) * 1e-9 /
                     static_cast<double>(dram_interval_samples);
  }
  double MeanCssIntervalSeconds() const {
    return css_interval_samples == 0
               ? 0.0
               : static_cast<double>(css_interval_nanos) * 1e-9 /
                     static_cast<double>(css_interval_samples);
  }
};

// Resident-set accounting and victim selection for the data cache. The
// cache manager does not hold page contents — the Bw-tree owns those via
// the mapping table; this class decides *which* logical pages should be
// resident, which is the knob the paper's whole cost analysis is about.
//
// Concurrency: sharded CLOCK design. Pages hash to one of S shards, each
// an open-addressing table of fixed slots. The hot-path operations —
// Touch, Contains, IdleSeconds — are lock-free: they probe the slot
// table through an acquire-load of the published pid and then read or
// write the per-entry atomics (reference bit, last-touch tick) with
// relaxed ordering. Structural mutations (Insert/Erase/Resize/growth)
// take a short per-shard mutex; victim selection snapshots each shard
// under that same mutex, so eviction never blocks the read path.
//
// Memory-ordering contract: a slot's payload fields (bytes, tick, seq,
// reference bit) are written before its pid is store-released; readers
// acquire-load the pid and may then read the payload relaxed. Ticks and
// reference bits are advisory recency metadata — concurrent updates race
// benignly (a lost Touch can only make a page look slightly colder).
// Outgrown tables are retired to the owning shard, not freed, so a
// lock-free reader can keep probing a stale table safely; retired memory
// is bounded by the live table's size (geometric growth).
//
// Epoch note: unlike the Bw-tree's delta chains, the cache manager needs
// no EpochManager and its readers carry no REQUIRES_EPOCH contracts —
// reclamation is designed out instead. Retired tables live until the
// manager dies (`tables` above), and VictimCandidate::ref pointers stay
// valid for the same reason. That is the deliberate trade: a bounded
// amount of un-reclaimed table memory buys a guard-free Touch/Contains
// probe on every operation.
class CacheManager {
 public:
  explicit CacheManager(CacheOptions options = {});

  CacheManager(const CacheManager&) = delete;
  CacheManager& operator=(const CacheManager&) = delete;

  // Page became resident (DRAM tier) with the given footprint. If pid is
  // currently tracked in the CSS tier this IS the promotion path: the
  // entry flips to kDram, byte accounting moves between tiers, and its
  // reheat counter bumps — so the tree's ordinary load-and-install flow
  // promotes compressed pages without any tier-specific calls.
  void Insert(mapping::PageId pid, uint64_t bytes);
  // Page was accessed (sets reference bit / refreshes last-touch tick).
  // Lock-free.
  COSTPERF_HOT void Touch(mapping::PageId pid);
  // Page footprint changed (delta prepend, consolidation).
  void Resize(mapping::PageId pid, uint64_t new_bytes);
  // Page no longer resident (evicted or freed). No-op if absent.
  void Erase(mapping::PageId pid);
  // Lock-free.
  COSTPERF_HOT bool Contains(mapping::PageId pid) const;

  uint64_t resident_bytes() const;
  bool OverBudget() const;

  // Picks victims whose combined size is >= want_bytes (or until the
  // cache would be empty), in policy order. Does NOT erase them — the
  // caller evicts each page (flushing if dirty) and then calls Erase.
  // For kCostBased with want_bytes == 0, returns every page whose idle
  // time exceeds breakeven (proactive cost-driven eviction).
  std::vector<mapping::PageId> PickVictims(uint64_t want_bytes);
  // Quota-bounded variant for incremental background eviction: stops
  // after max_pages victims even if want_bytes is not yet covered (the
  // caller re-runs on its next maintenance step).
  std::vector<mapping::PageId> PickVictims(uint64_t want_bytes,
                                           size_t max_pages);

  // Seconds since pid was last touched; negative if unknown. Lock-free.
  double IdleSeconds(mapping::PageId pid) const;

  // --- Tier hierarchy (DESIGN.md §3.7) -----------------------------------

  // Moves a tracked page between tiers; `bytes` is its footprint in the
  // destination tier (compressed size for kCss, raw chain size for
  // kDram). Returns false (no accounting change) if pid is untracked or
  // already in `tier`. kCss -> kDram through here counts a promotion and
  // a reheat, same as the Insert path.
  bool SetTier(mapping::PageId pid, CacheTier tier, uint64_t bytes);
  // Current tier; kDram if untracked (use Contains to distinguish).
  // Lock-free.
  CacheTier GetTier(mapping::PageId pid) const;
  // How many times this page has been promoted back out of CSS. The
  // demotion policy refuses pages that keep reheating — repeatedly
  // paying decompress_r for the same page erases the storage saving
  // (Fig. 8's breakeven argument in reverse). 0 if untracked. Lock-free.
  uint32_t ReheatCount(mapping::PageId pid) const;

  uint64_t css_resident_bytes() const;
  void set_css_budget(uint64_t bytes);
  uint64_t css_budget() const {
    return css_budget_.load(std::memory_order_relaxed);
  }
  bool CssOverBudget() const;

  // Coldest-first DRAM-tier pages idle for at least min_idle_seconds:
  // the demotion work list. Does not change any state — the caller runs
  // DemotePage (which may refuse) and the tier flips via SetTier.
  std::vector<mapping::PageId> PickDemotionCandidates(
      size_t max_pages, double min_idle_seconds);
  // Coldest-first CSS-tier pages covering want_bytes: when the CSS tier
  // itself is over budget these fall through to plain SS (their durable
  // record already exists — the caller just Erases them here).
  std::vector<mapping::PageId> PickCssVictims(uint64_t want_bytes,
                                              size_t max_pages);
  // Hottest-first CSS-tier pages: promotion candidates for when DRAM has
  // headroom and background work can pay decompression ahead of demand.
  std::vector<mapping::PageId> PickPromotionCandidates(size_t max_pages);

  // Snapshot of (pid, stored bytes) for every CSS-tier page, for
  // invariant auditing against the log store's compressed-record
  // accounting.
  std::vector<std::pair<mapping::PageId, uint64_t>> CssEntries() const;

  CacheStats stats() const;
  const CacheOptions& options() const { return options_; }
  void set_memory_budget(uint64_t bytes);

  // Snapshot of (pid, bytes) for every page the cache believes resident
  // in DRAM. For invariant auditing: the analysis layer cross-checks
  // this set against the mapping table and the tree's resident chains —
  // CSS-tier pages are excluded because their mapping word is a flash
  // address, not a live chain.
  std::vector<std::pair<mapping::PageId, uint64_t>> ResidentEntries() const;

  size_t shard_count() const { return shards_.size(); }

 private:
  // Slot pid sentinels. kInvalidPageId doubles as "empty"; tombstones
  // keep linear-probe chains intact across Erase.
  static constexpr uint64_t kEmptyPid = mapping::kInvalidPageId;
  static constexpr uint64_t kTombstonePid = mapping::kInvalidPageId - 1;

  struct Slot {
    // Published last (release); readers acquire-load it before touching
    // the fields below.
    std::atomic<uint64_t> pid{kEmptyPid};
    std::atomic<uint64_t> bytes{0};
    // Last-access tick (Clock::NowNanos at the most recent full touch).
    std::atomic<uint64_t> tick{0};
    // Global insertion/re-insertion sequence; breaks recency ties among
    // pages whose ticks are equal, reproducing exact LRU order.
    std::atomic<uint64_t> seq{0};
    std::atomic<uint32_t> referenced{0};  // second-chance bit
    // CacheTier the entry occupies (raw uint32 so lock-free readers can
    // load it relaxed like the other payload fields).
    std::atomic<uint32_t> tier{0};
    // Promotions out of CSS survived so far; input to the anti-thrash
    // demotion refusal.
    std::atomic<uint32_t> reheats{0};
  };

  struct Table {
    explicit Table(size_t capacity)
        : mask(capacity - 1), slots(new Slot[capacity]) {}
    size_t capacity() const { return mask + 1; }
    const size_t mask;  // capacity - 1; capacity is a power of two
    const std::unique_ptr<Slot[]> slots;
  };

  struct alignas(64) Shard {
    // Short structural latch. Rank 3 in the global lock order: acquired
    // under the maintenance pass and after the log-append latch, never
    // the other way — holding a shard latch across a stalling append
    // would freeze this shard's Insert/Erase for the I/O's duration
    // (common/lock_order.h).
    mutable Mutex mu ACQUIRED_AFTER(lock_rank::kLogAppend)
        ACQUIRED_BEFORE(lock_rank::kSchedulerQueue);
    // Current table, readable without the mutex; swapped (under mu) on
    // growth with the old table pushed onto `tables`.
    std::atomic<Table*> table{nullptr};
    std::vector<std::unique_ptr<Table>> tables GUARDED_BY(mu);
    size_t live GUARDED_BY(mu) = 0;  // valid pids
    size_t used GUARDED_BY(mu) = 0;  // valid pids + tombstones
    std::atomic<uint64_t> resident_bytes{0};
    // Stored (compressed) footprint and page count of this shard's
    // CSS-tier entries; disjoint from resident_bytes, which is DRAM-tier
    // only (`live` counts both tiers).
    std::atomic<uint64_t> css_bytes{0};
    std::atomic<uint64_t> css_pages{0};
    std::atomic<uint64_t> insertions{0};
    std::atomic<uint64_t> evictions{0};
    std::atomic<uint64_t> demotions{0};
    std::atomic<uint64_t> promotions{0};
  };

  // Touch counters are striped per thread (not per shard): every touch
  // bumps its calling thread's private cell with a relaxed load+store,
  // so the hot path never does an atomic RMW on a shared line. stats()
  // sums the cells. Threads hash onto kTouchCells cells; two threads
  // sharing a cell can drop increments (counters only).
  struct alignas(64) TouchCell {
    std::atomic<uint64_t> touches{0};
    std::atomic<uint64_t> sampled{0};
    // Per-tier inter-reference gap accumulators (nanoseconds / gap
    // count), fed by the full-touch path reading the slot's previous
    // tick before refreshing it. Same single-writer load+store
    // discipline as the counters above.
    std::atomic<uint64_t> dram_interval_nanos{0};
    std::atomic<uint64_t> dram_interval_samples{0};
    std::atomic<uint64_t> css_interval_nanos{0};
    std::atomic<uint64_t> css_interval_samples{0};
  };
  static constexpr int kTouchCells = 64;
  static int TouchCellIndex();

  // A consistent per-page snapshot used for victim selection. ref points
  // into a slot (valid for the manager's lifetime — tables are retired,
  // never freed) so the CLOCK sweep can clear live reference bits.
  struct VictimCandidate {
    mapping::PageId pid;
    uint64_t bytes;
    uint64_t tick;
    uint64_t seq;
    std::atomic<uint32_t>* ref;
  };

  Shard& ShardFor(mapping::PageId pid) const;
  // Lock-free probe of the shard's current table. Returns nullptr when
  // pid is absent.
  COSTPERF_HOT Slot* FindSlot(const Shard& shard, mapping::PageId pid) const;
  // Probe under shard.mu for insert: returns the slot holding pid, or a
  // free (empty/tombstone) slot to claim, growing the table if needed.
  Slot* FindOrClaimSlot(Shard& shard, mapping::PageId pid,
                        bool* claimed_tombstone) REQUIRES(shard.mu);
  void GrowTable(Shard& shard) REQUIRES(shard.mu);
  // Snapshot of every page in `tier` across all shards, sorted by
  // (tick, seq) — i.e. exact LRU order, coldest first.
  std::vector<VictimCandidate> SnapshotByRecency(CacheTier tier);

  // memory_budget_bytes is mirrored in budget_ so OverBudget stays
  // lock-free; the remaining options fields are immutable after
  // construction.
  CacheOptions options_;
  Clock* clock_;
  std::atomic<uint64_t> budget_;
  // Stored-byte ceiling for the CSS tier; 0 = tier disabled.
  std::atomic<uint64_t> css_budget_{0};
  // Monotonic recency tiebreak, bumped on insert/re-insert.
  std::atomic<uint64_t> lru_seq_{0};
  size_t shard_mask_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  mutable TouchCell touch_cells_[kTouchCells];
};

}  // namespace costperf::llama

#endif  // COSTPERF_LLAMA_CACHE_MANAGER_H_
