#ifndef COSTPERF_LLAMA_CACHE_MANAGER_H_
#define COSTPERF_LLAMA_CACHE_MANAGER_H_

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "mapping/mapping_table.h"

namespace costperf::llama {

// How the cache chooses eviction victims.
enum class EvictionPolicy {
  kLru,           // classic least-recently-used
  kSecondChance,  // clock with one reference bit
  // The paper's §4.2 policy: evict pages whose idle time exceeds the
  // breakeven interval T_i from Eq. (6) — their continued DRAM rental
  // costs more than paying for an SS operation on next access. Falls back
  // to LRU order among eligible pages; under memory pressure with no page
  // past breakeven, evicts LRU anyway (budget is a hard constraint).
  kCostBased,
};

std::string EvictionPolicyName(EvictionPolicy p);

struct CacheOptions {
  uint64_t memory_budget_bytes = 64ull << 20;
  EvictionPolicy policy = EvictionPolicy::kLru;
  // Breakeven idle interval for kCostBased.
  double breakeven_interval_seconds = 45.0;
  Clock* clock = nullptr;  // defaults to RealClock::Global()
};

struct CacheStats {
  uint64_t insertions = 0;
  uint64_t touches = 0;
  uint64_t evictions = 0;
  uint64_t resident_bytes = 0;
  uint64_t resident_pages = 0;
};

// Resident-set accounting and victim selection for the data cache. The
// cache manager does not hold page contents — the Bw-tree owns those via
// the mapping table; this class decides *which* logical pages should be
// resident, which is the knob the paper's whole cost analysis is about.
//
// Thread-safe (single internal latch; all operations are O(1) or
// O(victims)).
class CacheManager {
 public:
  explicit CacheManager(CacheOptions options = {});

  CacheManager(const CacheManager&) = delete;
  CacheManager& operator=(const CacheManager&) = delete;

  // Page became resident with the given footprint.
  void Insert(mapping::PageId pid, uint64_t bytes);
  // Page was accessed (moves to MRU / sets reference bit).
  void Touch(mapping::PageId pid);
  // Page footprint changed (delta prepend, consolidation).
  void Resize(mapping::PageId pid, uint64_t new_bytes);
  // Page no longer resident (evicted or freed). No-op if absent.
  void Erase(mapping::PageId pid);
  bool Contains(mapping::PageId pid) const;

  uint64_t resident_bytes() const;
  bool OverBudget() const;

  // Picks victims whose combined size is >= want_bytes (or until the
  // cache would be empty), in policy order. Does NOT erase them — the
  // caller evicts each page (flushing if dirty) and then calls Erase.
  // For kCostBased with want_bytes == 0, returns every page whose idle
  // time exceeds breakeven (proactive cost-driven eviction).
  std::vector<mapping::PageId> PickVictims(uint64_t want_bytes);

  // Seconds since pid was last touched; negative if unknown.
  double IdleSeconds(mapping::PageId pid) const;

  CacheStats stats() const;
  const CacheOptions& options() const { return options_; }
  void set_memory_budget(uint64_t bytes);

  // Snapshot of (pid, bytes) for every page the cache believes resident.
  // For invariant auditing: the analysis layer cross-checks this set
  // against the mapping table and the tree's resident chains.
  std::vector<std::pair<mapping::PageId, uint64_t>> ResidentEntries() const;

 private:
  struct Entry {
    uint64_t bytes = 0;
    uint64_t last_access_nanos = 0;
    bool referenced = false;  // second-chance bit
    std::list<mapping::PageId>::iterator lru_pos;
  };

  // Budget is mutated under mu_ by set_memory_budget; the remaining
  // options fields are immutable after construction.
  CacheOptions options_;
  Clock* clock_;

  mutable Mutex mu_;
  std::unordered_map<mapping::PageId, Entry> entries_ GUARDED_BY(mu_);
  // Front = LRU, back = MRU.
  std::list<mapping::PageId> lru_ GUARDED_BY(mu_);
  // Clock hand for second chance (index into lru_ semantics: we reuse the
  // lru_ list and rotate).
  uint64_t resident_bytes_ GUARDED_BY(mu_) = 0;
  CacheStats stats_ GUARDED_BY(mu_);
};

}  // namespace costperf::llama

#endif  // COSTPERF_LLAMA_CACHE_MANAGER_H_
