#ifndef COSTPERF_LLAMA_CACHE_MANAGER_H_
#define COSTPERF_LLAMA_CACHE_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/hot_path.h"
#include "common/lock_order.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "mapping/mapping_table.h"

namespace costperf::llama {

// How the cache chooses eviction victims.
enum class EvictionPolicy {
  kLru,           // classic least-recently-used
  kSecondChance,  // clock with one reference bit
  // The paper's §4.2 policy: evict pages whose idle time exceeds the
  // breakeven interval T_i from Eq. (6) — their continued DRAM rental
  // costs more than paying for an SS operation on next access. Falls back
  // to LRU order among eligible pages; under memory pressure with no page
  // past breakeven, evicts LRU anyway (budget is a hard constraint).
  kCostBased,
};

std::string EvictionPolicyName(EvictionPolicy p);

struct CacheOptions {
  uint64_t memory_budget_bytes = 64ull << 20;
  EvictionPolicy policy = EvictionPolicy::kLru;
  // Breakeven idle interval for kCostBased.
  double breakeven_interval_seconds = 45.0;
  // Touch sampling: with touch_sample == 1 every Touch refreshes the
  // last-access tick; with N > 1 only every Nth touch (per thread) does
  // the table probe and recency update, the rest just bump a counter and
  // return. Recency then has 1-in-N granularity, which CLOCK-style
  // eviction tolerates; keep 1 when exact LRU order matters.
  uint32_t touch_sample = 1;
  // Shard count; rounded up to a power of two. 0 = default (16).
  uint32_t shards = 0;
  Clock* clock = nullptr;  // defaults to RealClock::Global()
};

struct CacheStats {
  uint64_t insertions = 0;
  uint64_t touches = 0;
  uint64_t evictions = 0;
  uint64_t resident_bytes = 0;
  uint64_t resident_pages = 0;
  // Touches that took the sampled fast path (skipped: no table probe,
  // no clock read). touches counts every Touch call.
  uint64_t touches_sampled = 0;
};

// Resident-set accounting and victim selection for the data cache. The
// cache manager does not hold page contents — the Bw-tree owns those via
// the mapping table; this class decides *which* logical pages should be
// resident, which is the knob the paper's whole cost analysis is about.
//
// Concurrency: sharded CLOCK design. Pages hash to one of S shards, each
// an open-addressing table of fixed slots. The hot-path operations —
// Touch, Contains, IdleSeconds — are lock-free: they probe the slot
// table through an acquire-load of the published pid and then read or
// write the per-entry atomics (reference bit, last-touch tick) with
// relaxed ordering. Structural mutations (Insert/Erase/Resize/growth)
// take a short per-shard mutex; victim selection snapshots each shard
// under that same mutex, so eviction never blocks the read path.
//
// Memory-ordering contract: a slot's payload fields (bytes, tick, seq,
// reference bit) are written before its pid is store-released; readers
// acquire-load the pid and may then read the payload relaxed. Ticks and
// reference bits are advisory recency metadata — concurrent updates race
// benignly (a lost Touch can only make a page look slightly colder).
// Outgrown tables are retired to the owning shard, not freed, so a
// lock-free reader can keep probing a stale table safely; retired memory
// is bounded by the live table's size (geometric growth).
//
// Epoch note: unlike the Bw-tree's delta chains, the cache manager needs
// no EpochManager and its readers carry no REQUIRES_EPOCH contracts —
// reclamation is designed out instead. Retired tables live until the
// manager dies (`tables` above), and VictimCandidate::ref pointers stay
// valid for the same reason. That is the deliberate trade: a bounded
// amount of un-reclaimed table memory buys a guard-free Touch/Contains
// probe on every operation.
class CacheManager {
 public:
  explicit CacheManager(CacheOptions options = {});

  CacheManager(const CacheManager&) = delete;
  CacheManager& operator=(const CacheManager&) = delete;

  // Page became resident with the given footprint.
  void Insert(mapping::PageId pid, uint64_t bytes);
  // Page was accessed (sets reference bit / refreshes last-touch tick).
  // Lock-free.
  COSTPERF_HOT void Touch(mapping::PageId pid);
  // Page footprint changed (delta prepend, consolidation).
  void Resize(mapping::PageId pid, uint64_t new_bytes);
  // Page no longer resident (evicted or freed). No-op if absent.
  void Erase(mapping::PageId pid);
  // Lock-free.
  COSTPERF_HOT bool Contains(mapping::PageId pid) const;

  uint64_t resident_bytes() const;
  bool OverBudget() const;

  // Picks victims whose combined size is >= want_bytes (or until the
  // cache would be empty), in policy order. Does NOT erase them — the
  // caller evicts each page (flushing if dirty) and then calls Erase.
  // For kCostBased with want_bytes == 0, returns every page whose idle
  // time exceeds breakeven (proactive cost-driven eviction).
  std::vector<mapping::PageId> PickVictims(uint64_t want_bytes);
  // Quota-bounded variant for incremental background eviction: stops
  // after max_pages victims even if want_bytes is not yet covered (the
  // caller re-runs on its next maintenance step).
  std::vector<mapping::PageId> PickVictims(uint64_t want_bytes,
                                           size_t max_pages);

  // Seconds since pid was last touched; negative if unknown. Lock-free.
  double IdleSeconds(mapping::PageId pid) const;

  CacheStats stats() const;
  const CacheOptions& options() const { return options_; }
  void set_memory_budget(uint64_t bytes);

  // Snapshot of (pid, bytes) for every page the cache believes resident.
  // For invariant auditing: the analysis layer cross-checks this set
  // against the mapping table and the tree's resident chains.
  std::vector<std::pair<mapping::PageId, uint64_t>> ResidentEntries() const;

  size_t shard_count() const { return shards_.size(); }

 private:
  // Slot pid sentinels. kInvalidPageId doubles as "empty"; tombstones
  // keep linear-probe chains intact across Erase.
  static constexpr uint64_t kEmptyPid = mapping::kInvalidPageId;
  static constexpr uint64_t kTombstonePid = mapping::kInvalidPageId - 1;

  struct Slot {
    // Published last (release); readers acquire-load it before touching
    // the fields below.
    std::atomic<uint64_t> pid{kEmptyPid};
    std::atomic<uint64_t> bytes{0};
    // Last-access tick (Clock::NowNanos at the most recent full touch).
    std::atomic<uint64_t> tick{0};
    // Global insertion/re-insertion sequence; breaks recency ties among
    // pages whose ticks are equal, reproducing exact LRU order.
    std::atomic<uint64_t> seq{0};
    std::atomic<uint32_t> referenced{0};  // second-chance bit
  };

  struct Table {
    explicit Table(size_t capacity)
        : mask(capacity - 1), slots(new Slot[capacity]) {}
    size_t capacity() const { return mask + 1; }
    const size_t mask;  // capacity - 1; capacity is a power of two
    const std::unique_ptr<Slot[]> slots;
  };

  struct alignas(64) Shard {
    // Short structural latch. Rank 3 in the global lock order: acquired
    // under the maintenance pass and after the log-append latch, never
    // the other way — holding a shard latch across a stalling append
    // would freeze this shard's Insert/Erase for the I/O's duration
    // (common/lock_order.h).
    mutable Mutex mu ACQUIRED_AFTER(lock_rank::kLogAppend)
        ACQUIRED_BEFORE(lock_rank::kSchedulerQueue);
    // Current table, readable without the mutex; swapped (under mu) on
    // growth with the old table pushed onto `tables`.
    std::atomic<Table*> table{nullptr};
    std::vector<std::unique_ptr<Table>> tables GUARDED_BY(mu);
    size_t live GUARDED_BY(mu) = 0;  // valid pids
    size_t used GUARDED_BY(mu) = 0;  // valid pids + tombstones
    std::atomic<uint64_t> resident_bytes{0};
    std::atomic<uint64_t> insertions{0};
    std::atomic<uint64_t> evictions{0};
  };

  // Touch counters are striped per thread (not per shard): every touch
  // bumps its calling thread's private cell with a relaxed load+store,
  // so the hot path never does an atomic RMW on a shared line. stats()
  // sums the cells. Threads hash onto kTouchCells cells; two threads
  // sharing a cell can drop increments (counters only).
  struct alignas(64) TouchCell {
    std::atomic<uint64_t> touches{0};
    std::atomic<uint64_t> sampled{0};
  };
  static constexpr int kTouchCells = 64;
  static int TouchCellIndex();

  // A consistent per-page snapshot used for victim selection. ref points
  // into a slot (valid for the manager's lifetime — tables are retired,
  // never freed) so the CLOCK sweep can clear live reference bits.
  struct VictimCandidate {
    mapping::PageId pid;
    uint64_t bytes;
    uint64_t tick;
    uint64_t seq;
    std::atomic<uint32_t>* ref;
  };

  Shard& ShardFor(mapping::PageId pid) const;
  // Lock-free probe of the shard's current table. Returns nullptr when
  // pid is absent.
  COSTPERF_HOT Slot* FindSlot(const Shard& shard, mapping::PageId pid) const;
  // Probe under shard.mu for insert: returns the slot holding pid, or a
  // free (empty/tombstone) slot to claim, growing the table if needed.
  Slot* FindOrClaimSlot(Shard& shard, mapping::PageId pid,
                        bool* claimed_tombstone) REQUIRES(shard.mu);
  void GrowTable(Shard& shard) REQUIRES(shard.mu);
  // Snapshot of every resident page across all shards, sorted by
  // (tick, seq) — i.e. exact LRU order, coldest first.
  std::vector<VictimCandidate> SnapshotByRecency();

  // memory_budget_bytes is mirrored in budget_ so OverBudget stays
  // lock-free; the remaining options fields are immutable after
  // construction.
  CacheOptions options_;
  Clock* clock_;
  std::atomic<uint64_t> budget_;
  // Monotonic recency tiebreak, bumped on insert/re-insert.
  std::atomic<uint64_t> lru_seq_{0};
  size_t shard_mask_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  mutable TouchCell touch_cells_[kTouchCells];
};

}  // namespace costperf::llama

#endif  // COSTPERF_LLAMA_CACHE_MANAGER_H_
